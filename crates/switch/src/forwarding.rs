//! Replica forwarding state — the switch's view of the replica group.
//!
//! The data plane keeps the replica addresses in match-action entries; the
//! control plane updates them when servers fail or recover (§5.3). The
//! forwarding table also knows, per replication protocol, where writes and
//! normal-path reads *enter* the group (chain head vs. primary vs. leader,
//! or an ordered multicast for NOPaxos).

use harmonia_types::{NodeId, ReplicaId};
use rand::Rng;

/// Where the underlying protocol accepts writes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteEntry {
    /// Primary-backup: the primary (first live replica in role order).
    Primary,
    /// Chain replication / CRAQ: the chain head.
    ChainHead,
    /// VR / Multi-Paxos: the leader.
    Leader,
    /// NOPaxos: sequenced multicast to every replica.
    Multicast,
}

/// Where the underlying protocol serves normal-path reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadEntry {
    /// Primary-backup: the primary.
    Primary,
    /// Chain replication / CRAQ: the tail.
    ChainTail,
    /// VR / NOPaxos: the leader.
    Leader,
}

/// The switch's forwarding view of one replica group.
#[derive(Clone, Debug)]
pub struct ForwardingTable {
    /// Live replicas in role order: index 0 is primary/head/leader; the last
    /// entry is the chain tail.
    replicas: Vec<ReplicaId>,
    write_entry: WriteEntry,
    read_entry: ReadEntry,
}

impl ForwardingTable {
    /// Build a table for `n` replicas with the given entry points.
    pub fn new(n: usize, write_entry: WriteEntry, read_entry: ReadEntry) -> Self {
        Self::with_members(
            (0..n as u32).map(ReplicaId).collect(),
            write_entry,
            read_entry,
        )
    }

    /// Build a table for an explicit membership in role order (sharded
    /// deployments give each group a disjoint slice of the global replica-id
    /// space, so ids do not start at zero).
    pub fn with_members(
        members: Vec<ReplicaId>,
        write_entry: WriteEntry,
        read_entry: ReadEntry,
    ) -> Self {
        assert!(
            !members.is_empty(),
            "a replica group needs at least one member"
        );
        ForwardingTable {
            replicas: members,
            write_entry,
            read_entry,
        }
    }

    /// Live replicas in role order.
    pub fn replicas(&self) -> &[ReplicaId] {
        &self.replicas
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True if no replicas remain.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Control plane: remove a failed replica so no further requests are
    /// scheduled to it (§5.3).
    pub fn remove_replica(&mut self, r: ReplicaId) {
        self.replicas.retain(|&x| x != r);
    }

    /// Control plane: add a recovered or replacement replica (appended at
    /// the tail position, the standard chain-repair location).
    pub fn add_replica(&mut self, r: ReplicaId) {
        if !self.replicas.contains(&r) {
            self.replicas.push(r);
        }
    }

    /// Control plane: replace the whole set (bulk reconfiguration).
    pub fn set_replicas(&mut self, rs: Vec<ReplicaId>) {
        self.replicas = rs;
    }

    /// Where a write enters the protocol. `Multicast` yields every replica.
    pub fn write_destinations(&self) -> Vec<NodeId> {
        match self.write_entry {
            WriteEntry::Primary | WriteEntry::ChainHead | WriteEntry::Leader => self
                .replicas
                .first()
                .map(|&r| NodeId::Replica(r))
                .into_iter()
                .collect(),
            WriteEntry::Multicast => self.replicas.iter().map(|&r| NodeId::Replica(r)).collect(),
        }
    }

    /// Where a normal-path read is served.
    pub fn normal_read_destination(&self) -> Option<NodeId> {
        match self.read_entry {
            ReadEntry::Primary | ReadEntry::Leader => {
                self.replicas.first().map(|&r| NodeId::Replica(r))
            }
            ReadEntry::ChainTail => self.replicas.last().map(|&r| NodeId::Replica(r)),
        }
    }

    /// Pick a uniformly random live replica for a fast-path read
    /// (Algorithm 1 line 12).
    pub fn random_replica<R: Rng>(&self, rng: &mut R) -> Option<NodeId> {
        if self.replicas.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.replicas.len());
        Some(NodeId::Replica(self.replicas[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn chain_entry_points() {
        let t = ForwardingTable::new(3, WriteEntry::ChainHead, ReadEntry::ChainTail);
        assert_eq!(t.write_destinations(), vec![NodeId::Replica(ReplicaId(0))]);
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(2)))
        );
    }

    #[test]
    fn multicast_targets_all_replicas() {
        let t = ForwardingTable::new(3, WriteEntry::Multicast, ReadEntry::Leader);
        assert_eq!(t.write_destinations().len(), 3);
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(0)))
        );
    }

    #[test]
    fn remove_replica_shifts_roles() {
        let mut t = ForwardingTable::new(3, WriteEntry::ChainHead, ReadEntry::ChainTail);
        // Tail fails: the middle node becomes the tail.
        t.remove_replica(ReplicaId(2));
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(1)))
        );
        // Head fails: next node becomes head.
        t.remove_replica(ReplicaId(0));
        assert_eq!(t.write_destinations(), vec![NodeId::Replica(ReplicaId(1))]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn add_replica_appends_and_dedups() {
        let mut t = ForwardingTable::new(2, WriteEntry::ChainHead, ReadEntry::ChainTail);
        t.add_replica(ReplicaId(5));
        t.add_replica(ReplicaId(5));
        assert_eq!(t.replicas(), &[ReplicaId(0), ReplicaId(1), ReplicaId(5)]);
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(5)))
        );
    }

    #[test]
    fn random_replica_covers_all_members() {
        let t = ForwardingTable::new(4, WriteEntry::Primary, ReadEntry::Primary);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(t.random_replica(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn empty_table_yields_no_destinations() {
        let mut t = ForwardingTable::new(1, WriteEntry::Primary, ReadEntry::Primary);
        t.remove_replica(ReplicaId(0));
        assert!(t.is_empty());
        assert!(t.write_destinations().is_empty());
        assert!(t.normal_read_destination().is_none());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(t.random_replica(&mut rng).is_none());
    }
}
