//! Replica forwarding state — the switch's view of the replica group.
//!
//! The data plane keeps the replica addresses in match-action entries; the
//! control plane updates them when servers fail or recover (§5.3). The
//! forwarding table also knows, per replication protocol, where writes and
//! normal-path reads *enter* the group (chain head vs. primary vs. leader,
//! or an ordered multicast for NOPaxos).

use harmonia_types::{NodeId, ReplicaId, SwitchSeq};
use rand::Rng;

/// Where the underlying protocol accepts writes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteEntry {
    /// Primary-backup: the primary (first live replica in role order).
    Primary,
    /// Chain replication / CRAQ: the chain head.
    ChainHead,
    /// VR / Multi-Paxos: the leader.
    Leader,
    /// NOPaxos: sequenced multicast to every replica.
    Multicast,
}

/// Where the underlying protocol serves normal-path reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadEntry {
    /// Primary-backup: the primary.
    Primary,
    /// Chain replication / CRAQ: the tail.
    ChainTail,
    /// VR / NOPaxos: the leader.
    Leader,
}

/// The switch's forwarding view of one replica group.
#[derive(Clone, Debug)]
pub struct ForwardingTable {
    /// Live replicas in role order: index 0 is primary/head/leader; the last
    /// entry is the chain tail.
    replicas: Vec<ReplicaId>,
    write_entry: WriteEntry,
    read_entry: ReadEntry,
    /// Recovering members excluded from read scheduling, each with its gate
    /// floor: the last-committed point when the gate was installed. A gated
    /// replica still receives protocol traffic (it is a member) but serves
    /// no reads until an ungate proves it caught up past the floor — every
    /// write in its recovery window is at or below that point.
    gated: Vec<(ReplicaId, SwitchSeq)>,
}

impl ForwardingTable {
    /// Build a table for `n` replicas with the given entry points.
    pub fn new(n: usize, write_entry: WriteEntry, read_entry: ReadEntry) -> Self {
        Self::with_members(
            (0..n as u32).map(ReplicaId).collect(),
            write_entry,
            read_entry,
        )
    }

    /// Build a table for an explicit membership in role order (sharded
    /// deployments give each group a disjoint slice of the global replica-id
    /// space, so ids do not start at zero).
    pub fn with_members(
        members: Vec<ReplicaId>,
        write_entry: WriteEntry,
        read_entry: ReadEntry,
    ) -> Self {
        assert!(
            !members.is_empty(),
            "a replica group needs at least one member"
        );
        ForwardingTable {
            replicas: members,
            write_entry,
            read_entry,
            gated: Vec::new(),
        }
    }

    /// Live replicas in role order.
    pub fn replicas(&self) -> &[ReplicaId] {
        &self.replicas
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True if no replicas remain.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Control plane: remove a failed replica so no further requests are
    /// scheduled to it (§5.3).
    pub fn remove_replica(&mut self, r: ReplicaId) {
        self.replicas.retain(|&x| x != r);
        self.gated.retain(|&(x, _)| x != r);
    }

    /// Control plane: add a recovered or replacement replica (appended at
    /// the tail position, the standard chain-repair location).
    pub fn add_replica(&mut self, r: ReplicaId) {
        if !self.replicas.contains(&r) {
            self.replicas.push(r);
        }
    }

    /// Control plane: replace the whole set (bulk reconfiguration). Gates on
    /// replicas that left the set are dropped; gates on members persist —
    /// reconfiguration must not silently expose a recovering replica.
    pub fn set_replicas(&mut self, rs: Vec<ReplicaId>) {
        self.replicas = rs;
        let members = &self.replicas;
        self.gated.retain(|(r, _)| members.contains(r));
    }

    /// Control plane: gate a recovering member out of read scheduling.
    /// `floor` is the group's last-committed point at gate time — the upper
    /// bound of the replica's recovery window. Re-gating refreshes the
    /// floor. Gating a non-member is remembered too: restart orchestration
    /// may gate before (re)announcing membership.
    pub fn gate_replica(&mut self, r: ReplicaId, floor: SwitchSeq) {
        self.gated.retain(|&(x, _)| x != r);
        self.gated.push((r, floor));
    }

    /// Control plane: lift a gate. Succeeds only if the replica has provably
    /// applied through the gate floor (`caught_up >= floor`), so a stale or
    /// reordered ungate never exposes an un-caught-up replica to reads.
    /// Returns whether the gate was lifted.
    pub fn ungate_replica(&mut self, r: ReplicaId, caught_up: SwitchSeq) -> bool {
        match self.gated.iter().position(|&(x, _)| x == r) {
            Some(i) if caught_up >= self.gated[i].1 => {
                self.gated.remove(i);
                true
            }
            Some(_) => false,
            // No gate on record: nothing to lift, and the replica is
            // already eligible for reads.
            None => true,
        }
    }

    /// True if `r` is currently gated out of read scheduling.
    pub fn is_gated(&self, r: ReplicaId) -> bool {
        self.gated.iter().any(|&(x, _)| x == r)
    }

    /// Members currently eligible to serve reads, in role order.
    fn readable(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.replicas
            .iter()
            .copied()
            .filter(move |&r| !self.is_gated(r))
    }

    /// Where a write enters the protocol. `Multicast` yields every replica.
    pub fn write_destinations(&self) -> Vec<NodeId> {
        match self.write_entry {
            WriteEntry::Primary | WriteEntry::ChainHead | WriteEntry::Leader => self
                .replicas
                .first()
                .map(|&r| NodeId::Replica(r))
                .into_iter()
                .collect(),
            WriteEntry::Multicast => self.replicas.iter().map(|&r| NodeId::Replica(r)).collect(),
        }
    }

    /// Where a normal-path read is served. Gated members are skipped: a
    /// recovering tail's read role falls back to its predecessor until the
    /// gate lifts.
    pub fn normal_read_destination(&self) -> Option<NodeId> {
        match self.read_entry {
            ReadEntry::Primary | ReadEntry::Leader => self.readable().next().map(NodeId::Replica),
            ReadEntry::ChainTail => self.readable().last().map(NodeId::Replica),
        }
    }

    /// Pick a uniformly random read-eligible replica for a fast-path read
    /// (Algorithm 1 line 12). Gated members are excluded — a fast-path read
    /// must never land on a replica still inside its recovery window.
    pub fn random_replica<R: Rng>(&self, rng: &mut R) -> Option<NodeId> {
        let eligible: Vec<ReplicaId> = self.readable().collect();
        if eligible.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..eligible.len());
        Some(NodeId::Replica(eligible[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::SwitchId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn chain_entry_points() {
        let t = ForwardingTable::new(3, WriteEntry::ChainHead, ReadEntry::ChainTail);
        assert_eq!(t.write_destinations(), vec![NodeId::Replica(ReplicaId(0))]);
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(2)))
        );
    }

    #[test]
    fn multicast_targets_all_replicas() {
        let t = ForwardingTable::new(3, WriteEntry::Multicast, ReadEntry::Leader);
        assert_eq!(t.write_destinations().len(), 3);
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(0)))
        );
    }

    #[test]
    fn remove_replica_shifts_roles() {
        let mut t = ForwardingTable::new(3, WriteEntry::ChainHead, ReadEntry::ChainTail);
        // Tail fails: the middle node becomes the tail.
        t.remove_replica(ReplicaId(2));
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(1)))
        );
        // Head fails: next node becomes head.
        t.remove_replica(ReplicaId(0));
        assert_eq!(t.write_destinations(), vec![NodeId::Replica(ReplicaId(1))]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn add_replica_appends_and_dedups() {
        let mut t = ForwardingTable::new(2, WriteEntry::ChainHead, ReadEntry::ChainTail);
        t.add_replica(ReplicaId(5));
        t.add_replica(ReplicaId(5));
        assert_eq!(t.replicas(), &[ReplicaId(0), ReplicaId(1), ReplicaId(5)]);
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(5)))
        );
    }

    #[test]
    fn random_replica_covers_all_members() {
        let t = ForwardingTable::new(4, WriteEntry::Primary, ReadEntry::Primary);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(t.random_replica(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn gated_replica_serves_no_reads_until_caught_up() {
        let mut t = ForwardingTable::new(3, WriteEntry::ChainHead, ReadEntry::ChainTail);
        let floor = SwitchSeq::new(SwitchId(1), 10);
        t.gate_replica(ReplicaId(2), floor);
        assert!(t.is_gated(ReplicaId(2)));
        // Normal reads fall back to the predecessor tail.
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(1)))
        );
        // The fast path never picks the gated member.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_ne!(
                t.random_replica(&mut rng),
                Some(NodeId::Replica(ReplicaId(2)))
            );
        }
        // Writes still enter at the head.
        assert_eq!(t.write_destinations(), vec![NodeId::Replica(ReplicaId(0))]);
        // A stale ungate (below the floor) is refused.
        assert!(!t.ungate_replica(ReplicaId(2), SwitchSeq::new(SwitchId(1), 9)));
        assert!(t.is_gated(ReplicaId(2)));
        // A caught-up ungate lifts the gate and restores the read role.
        assert!(t.ungate_replica(ReplicaId(2), floor));
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(2)))
        );
    }

    #[test]
    fn reconfiguration_preserves_member_gates() {
        let mut t = ForwardingTable::new(3, WriteEntry::Primary, ReadEntry::Primary);
        t.gate_replica(ReplicaId(0), SwitchSeq::new(SwitchId(1), 5));
        // Primary gated: normal reads fall to the next member.
        assert_eq!(
            t.normal_read_destination(),
            Some(NodeId::Replica(ReplicaId(1)))
        );
        t.set_replicas(vec![ReplicaId(0), ReplicaId(1)]);
        assert!(t.is_gated(ReplicaId(0)), "member gates survive SetReplicas");
        t.remove_replica(ReplicaId(0));
        assert!(!t.is_gated(ReplicaId(0)), "removal drops the gate");
    }

    #[test]
    fn empty_table_yields_no_destinations() {
        let mut t = ForwardingTable::new(1, WriteEntry::Primary, ReadEntry::Primary);
        t.remove_replica(ReplicaId(0));
        assert!(t.is_empty());
        assert!(t.write_destinations().is_empty());
        assert!(t.normal_read_destination().is_none());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(t.random_replica(&mut rng).is_none());
    }
}
