//! Per-stage hash functions.
//!
//! Each pipeline stage indexes its register array with an *independent* hash
//! of the object id (§6.1: "we allocate a register array in each stage and
//! use different hash functions for different stages"). Tofino provides CRC
//! units with configurable polynomials; we use MurmurHash3's 32-bit finalizer
//! over `(object_id, stage_seed)` — cheap, well mixed, and deterministic
//! across runs and platforms.

use harmonia_types::ObjectId;

/// A seeded 32-bit hash for one pipeline stage.
#[derive(Clone, Copy, Debug)]
pub struct StageHash {
    seed: u32,
}

impl StageHash {
    /// Build the hash function for stage `stage`.
    pub fn for_stage(stage: u32) -> Self {
        // Distinct, odd seeds per stage; the constant is the golden-ratio
        // increment used by splitmix.
        StageHash {
            seed: 0x9e37_79b9u32.wrapping_mul(stage + 1) | 1,
        }
    }

    /// Hash an object id.
    pub fn hash(self, obj: ObjectId) -> u32 {
        let mut h = obj.0 ^ self.seed;
        // MurmurHash3 fmix32.
        h ^= h >> 16;
        h = h.wrapping_mul(0x85eb_ca6b);
        h ^= h >> 13;
        h = h.wrapping_mul(0xc2b2_ae35);
        h ^= h >> 16;
        h
    }

    /// Hash an object id into a table of `slots` entries.
    pub fn slot(self, obj: ObjectId, slots: usize) -> usize {
        debug_assert!(slots > 0);
        // Lemire's multiply-shift range reduction: unbiased enough for table
        // indexing and cheaper than modulo for non-power-of-two sizes.
        ((u64::from(self.hash(obj)) * slots as u64) >> 32) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_hash_independently() {
        let h0 = StageHash::for_stage(0);
        let h1 = StageHash::for_stage(1);
        let obj = ObjectId(12345);
        assert_ne!(h0.hash(obj), h1.hash(obj));
    }

    #[test]
    fn slot_is_in_range() {
        let h = StageHash::for_stage(0);
        for slots in [1usize, 3, 64, 64000] {
            for i in 0..1000u32 {
                assert!(h.slot(ObjectId(i), slots) < slots);
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = StageHash::for_stage(2);
        let slots = 64;
        let mut counts = vec![0u32; slots];
        let n = 64_000u32;
        for i in 0..n {
            counts[h.slot(ObjectId(i), slots)] += 1;
        }
        let expect = n / slots as u32;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).abs() < (expect as i64) / 2,
                "slot {s} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn colliding_keys_in_one_stage_usually_split_in_another() {
        // Find pairs colliding in stage 0 and check most separate in stage 1:
        // the open-addressing premise of Figure 4.
        let h0 = StageHash::for_stage(0);
        let h1 = StageHash::for_stage(1);
        let slots = 64;
        let mut by_slot: std::collections::HashMap<usize, Vec<ObjectId>> = Default::default();
        for i in 0..10_000u32 {
            by_slot
                .entry(h0.slot(ObjectId(i), slots))
                .or_default()
                .push(ObjectId(i));
        }
        let mut pairs = 0;
        let mut split = 0;
        for group in by_slot.values() {
            for w in group.windows(2) {
                pairs += 1;
                if h1.slot(w[0], slots) != h1.slot(w[1], slots) {
                    split += 1;
                }
            }
        }
        assert!(pairs > 100);
        assert!(
            split as f64 / pairs as f64 > 0.9,
            "only {split}/{pairs} collisions split in the next stage"
        );
    }
}
