//! Userspace emulation of the Harmonia programmable-switch data plane.
//!
//! The paper implements its request scheduler as a P4 program on a Barefoot
//! Tofino ASIC (§6, §8). This crate reproduces that data plane in software,
//! preserving the structures and constraints that matter:
//!
//! * [`register::RegisterArray`] — per-stage stateful memory; every packet
//!   may perform **at most one** read-modify-write per stage, the Tofino
//!   constraint that forces the multi-stage hash-table design.
//! * [`table::MultiStageHashTable`] — the dirty set: `n` stages × `m` slots,
//!   per-stage independent hash functions, open addressing across stages
//!   (Figure 4). Writes that collide in every stage are **dropped**, exactly
//!   as §6.1 specifies — Figure 8 measures the consequence.
//! * [`conflict::ConflictDetector`] — Algorithm 1 verbatim: sequence-number
//!   assignment, dirty-set bookkeeping, last-committed tracking, fast-path
//!   read decisions, plus the §5.3 failover gating (no fast-path reads until
//!   the first WRITE-COMPLETION bearing the new switch's id).
//! * [`forwarding::ForwardingTable`] — replica addresses and per-protocol
//!   entry points (head/tail/leader/multicast), updated by the control plane
//!   on server failure (§5.3).
//! * [`sequencer::Sequencer`] — the NOPaxos ordered-unreliable-multicast
//!   sequencer, co-located in the same switch as §7.3 suggests.
//! * [`stats`] — the §6.2 resource model (the `unm/(wt)` capacity formula)
//!   and live occupancy accounting.

#![forbid(unsafe_code)]

pub mod conflict;
pub mod forwarding;
pub mod hash;
pub mod register;
pub mod sequencer;
pub mod spine;
pub mod stats;
pub mod table;

pub use conflict::{ConflictConfig, ConflictDetector, ReadDecision, WriteDecision};
pub use forwarding::{ForwardingTable, ReadEntry, WriteEntry};
pub use sequencer::Sequencer;
pub use spine::{GroupId, GroupObservation, SpineSwitch, SpineView};
pub use stats::{ResourceModel, SwitchStats};
pub use table::{MultiStageHashTable, TableConfig};
