//! Register arrays — per-stage stateful switch memory.
//!
//! A Tofino stage exposes register arrays that a packet may access **once**
//! per traversal (a single read-modify-write at one index). We model the
//! array itself here; the access discipline is enforced structurally by the
//! callers (each table operation loops over stages exactly once) and audited
//! by the per-packet access counter, which `debug_assert`s the single-access
//! rule in test builds.

/// Fixed-size array of register entries, the unit of switch SRAM.
#[derive(Clone, Debug)]
pub struct RegisterArray<T> {
    slots: Vec<T>,
    /// Bytes of SRAM one entry occupies on the ASIC (for the §6.2 resource
    /// model; independent of Rust's in-memory layout).
    entry_bytes: usize,
    /// Read-modify-write operations performed (lifetime counter).
    accesses: u64,
    /// Accesses within the current packet (reset by [`begin_packet`]).
    ///
    /// [`begin_packet`]: RegisterArray::begin_packet
    packet_accesses: u32,
}

impl<T: Clone + Default> RegisterArray<T> {
    /// Allocate `slots` zeroed registers of `entry_bytes` each.
    pub fn new(slots: usize, entry_bytes: usize) -> Self {
        RegisterArray {
            slots: vec![T::default(); slots],
            entry_bytes,
            accesses: 0,
            packet_accesses: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the array has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// SRAM consumed by this array under the resource model.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * self.entry_bytes
    }

    /// Begin a new packet traversal (resets the per-packet access audit).
    pub fn begin_packet(&mut self) {
        self.packet_accesses = 0;
    }

    /// The single read-modify-write a packet may perform on this stage.
    ///
    /// Panics in debug builds if the same packet touches the array twice —
    /// that program would not compile to the ASIC.
    pub fn access<R>(&mut self, index: usize, f: impl FnOnce(&mut T) -> R) -> R {
        self.packet_accesses += 1;
        debug_assert!(
            self.packet_accesses <= 1,
            "register array accessed {} times by one packet (hardware allows 1)",
            self.packet_accesses
        );
        self.accesses += 1;
        f(&mut self.slots[index])
    }

    /// Control-plane read (not subject to the per-packet limit): the switch
    /// CPU can scan registers out-of-band, which is how periodic sweeps and
    /// occupancy reporting work.
    pub fn control_read(&self, index: usize) -> &T {
        &self.slots[index]
    }

    /// Control-plane write (e.g. clearing state on reboot).
    pub fn control_write(&mut self, index: usize, value: T) {
        self.slots[index] = value;
    }

    /// Iterate all slots (control plane).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter()
    }

    /// Mutable iteration over all slots (control-plane sweep).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut()
    }

    /// Lifetime data-plane access count.
    pub fn total_accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let r: RegisterArray<u32> = RegisterArray::new(8, 4);
        assert_eq!(r.len(), 8);
        assert!(!r.is_empty());
        assert!(r.iter().all(|&v| v == 0));
        assert_eq!(r.memory_bytes(), 32);
    }

    #[test]
    fn access_reads_and_writes() {
        let mut r: RegisterArray<u32> = RegisterArray::new(4, 4);
        r.begin_packet();
        let old = r.access(2, |v| {
            let old = *v;
            *v = 99;
            old
        });
        assert_eq!(old, 0);
        assert_eq!(*r.control_read(2), 99);
        assert_eq!(r.total_accesses(), 1);
    }

    #[test]
    #[should_panic(expected = "hardware allows 1")]
    #[cfg(debug_assertions)]
    fn double_access_in_one_packet_panics() {
        let mut r: RegisterArray<u32> = RegisterArray::new(4, 4);
        r.begin_packet();
        r.access(0, |_| ());
        r.access(1, |_| ());
    }

    #[test]
    fn new_packet_resets_the_audit() {
        let mut r: RegisterArray<u32> = RegisterArray::new(4, 4);
        for i in 0..4 {
            r.begin_packet();
            r.access(i, |v| *v = i as u32);
        }
        assert_eq!(r.total_accesses(), 4);
    }

    #[test]
    fn control_plane_bypasses_audit() {
        let mut r: RegisterArray<u32> = RegisterArray::new(2, 4);
        r.begin_packet();
        r.access(0, |v| *v = 1);
        // Multiple control accesses within the same packet are fine.
        r.control_write(1, 7);
        assert_eq!(*r.control_read(1), 7);
        assert_eq!(r.iter_mut().count(), 2);
    }
}
