//! NOPaxos ordered-unreliable-multicast (OUM) sequencer.
//!
//! NOPaxos relies on the network stamping each client request with a
//! `(session, sequence)` pair and multicasting it to every replica; replicas
//! detect drops as gaps in the sequence. The paper co-locates this sequencer
//! with Harmonia's conflict detection in the same switch (§7.3). A new
//! switch incarnation starts a new session, which forces the NOPaxos view
//! change / session-switch protocol on the replicas.

/// A sequencer stamp: `(session, seq)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OumStamp {
    /// Sequencer session (bumped on switch replacement).
    pub session: u64,
    /// Position within the session, starting at 1.
    pub seq: u64,
}

/// The in-switch sequencer.
#[derive(Clone, Debug)]
pub struct Sequencer {
    session: u64,
    next: u64,
}

impl Sequencer {
    /// Start a sequencer for the given session.
    pub fn new(session: u64) -> Self {
        Sequencer { session, next: 0 }
    }

    /// Current session.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Stamp the next message.
    pub fn stamp(&mut self) -> OumStamp {
        self.next += 1;
        OumStamp {
            session: self.session,
            seq: self.next,
        }
    }

    /// Messages stamped so far in this session.
    pub fn count(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_dense_and_ordered() {
        let mut s = Sequencer::new(3);
        let a = s.stamp();
        let b = s.stamp();
        assert_eq!(a, OumStamp { session: 3, seq: 1 });
        assert_eq!(b, OumStamp { session: 3, seq: 2 });
        assert!(b > a);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn new_session_outranks_old_session_stamps() {
        let mut old = Sequencer::new(1);
        for _ in 0..100 {
            old.stamp();
        }
        let last_old = OumStamp {
            session: 1,
            seq: old.count(),
        };
        let mut new = Sequencer::new(2);
        assert!(new.stamp() > last_old);
    }
}
