//! Multi-group scheduling — the §6.3 cloud-scale deployment.
//!
//! For rack-scale storage the ToR switch hosts one conflict detector. For
//! cloud-scale storage, replicas spread across racks and all traffic for a
//! replica group is serialized through a designated switch (e.g. a spine
//! switch in a leaf-spine fabric); the paper argues one switch can host
//! *many* replica groups because each group's dirty set is tiny (§9.4
//! measures ~16 KB per group).
//!
//! [`SpineSwitch`] is that aggregation: a table of per-group conflict
//! detectors with shared memory accounting, so the §6.3 claim — "the
//! capacity of a switch far exceeds that of a single replica group" — can
//! be checked quantitatively (see `memory_bytes` vs. a tens-of-MB SRAM
//! budget).
//!
//! A real Tofino processes different groups' packets in parallel at line
//! rate, so nothing in this state is inherently shared: each group's
//! detector is independent, and only the *accounting* is whole-switch. The
//! module therefore exposes both ownership shapes. [`SpineSwitch`] is the
//! single-owner aggregate (what the deterministic simulator runs), and
//! [`SpineSwitch::into_groups`] tears it into per-group detectors that
//! independent pipeline workers can own exclusively — no lock on the packet
//! path. Workers export [`GroupObservation`] snapshots; [`SpineView`] is the
//! aggregate-only read side that folds those snapshots back into the same
//! `memory_bytes`/stats totals the single-owner shape reports.

use std::collections::BTreeMap;

use harmonia_types::{ObjectId, SwitchId, WriteCompletion};

use crate::conflict::{ConflictConfig, ConflictDetector, ReadDecision, WriteDecision};
use crate::stats::SwitchStats;
use crate::table::TableConfig;

/// Identifies one replica group served by a spine switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// A point-in-time snapshot of one group's switch-resident state, exported
/// by whichever worker exclusively owns that group (a per-group pipeline
/// thread in the live driver). Snapshots are plain data: collecting them
/// never locks the owner's packet path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupObservation {
    /// The observed group.
    pub group: GroupId,
    /// The group's data-plane counters.
    pub stats: SwitchStats,
    /// Whether the group's fast path is currently enabled.
    pub fast_path_enabled: bool,
    /// Dirty-set SRAM consumed by the group.
    pub memory_bytes: usize,
    /// Dirty-set occupancy.
    pub dirty_len: usize,
}

/// Aggregate-only view over per-group observations: the whole-switch
/// `memory_bytes`/stats accounting of [`SpineSwitch`], reconstructed from
/// snapshots instead of owned state. This is what a control plane sees when
/// the groups themselves live on independent pipeline workers.
#[derive(Clone, Debug, Default)]
pub struct SpineView {
    observations: Vec<GroupObservation>,
}

impl SpineView {
    /// Build the view from per-group snapshots (any order).
    pub fn new(mut observations: Vec<GroupObservation>) -> Self {
        observations.sort_by_key(|o| o.group);
        SpineView { observations }
    }

    /// Number of observed groups.
    pub fn group_count(&self) -> usize {
        self.observations.len()
    }

    /// One group's snapshot.
    pub fn group(&self, group: GroupId) -> Option<&GroupObservation> {
        self.observations.iter().find(|o| o.group == group)
    }

    /// All snapshots, in group order.
    pub fn groups(&self) -> &[GroupObservation] {
        &self.observations
    }

    /// Aggregate data-plane counters across every observed group — the same
    /// fold [`SpineSwitch`]-backed switches report.
    pub fn stats(&self) -> SwitchStats {
        let mut total = SwitchStats::default();
        for o in &self.observations {
            total.merge(&o.stats);
        }
        total
    }

    /// Total dirty-set SRAM across every observed group (§6.3 budget
    /// check).
    pub fn memory_bytes(&self) -> usize {
        self.observations.iter().map(|o| o.memory_bytes).sum()
    }

    /// Total dirty-set occupancy (in-flight-write entries) across every
    /// observed group.
    pub fn dirty_len(&self) -> usize {
        self.observations.iter().map(|o| o.dirty_len).sum()
    }

    /// How many observed groups currently have their fast path enabled.
    pub fn fast_path_groups(&self) -> usize {
        self.observations
            .iter()
            .filter(|o| o.fast_path_enabled)
            .count()
    }
}

/// A switch hosting the Harmonia scheduler for many replica groups.
pub struct SpineSwitch {
    incarnation: SwitchId,
    per_group_table: TableConfig,
    groups: BTreeMap<GroupId, ConflictDetector>,
}

impl SpineSwitch {
    /// A spine switch with the given per-group dirty-set geometry.
    pub fn new(incarnation: SwitchId, per_group_table: TableConfig) -> Self {
        SpineSwitch {
            incarnation,
            per_group_table,
            groups: BTreeMap::new(),
        }
    }

    /// This incarnation's id (shared by every hosted group: one sequencer
    /// epoch per physical switch).
    pub fn incarnation(&self) -> SwitchId {
        self.incarnation
    }

    /// Provision the scheduler for a new replica group. Returns false if it
    /// already exists.
    pub fn add_group(&mut self, group: GroupId) -> bool {
        if self.groups.contains_key(&group) {
            return false;
        }
        self.groups.insert(
            group,
            ConflictDetector::new(ConflictConfig {
                switch_id: self.incarnation,
                table: self.per_group_table,
            }),
        );
        true
    }

    /// Decommission a group, releasing its SRAM.
    pub fn remove_group(&mut self, group: GroupId) -> bool {
        self.groups.remove(&group).is_some()
    }

    /// Number of hosted groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Algorithm 1's WRITE path for one group.
    pub fn process_write(&mut self, group: GroupId, obj: ObjectId) -> Option<WriteDecision> {
        self.groups.get_mut(&group).map(|d| d.process_write(obj))
    }

    /// Algorithm 1's READ path for one group.
    pub fn process_read(&mut self, group: GroupId, obj: ObjectId) -> Option<ReadDecision> {
        self.groups.get_mut(&group).map(|d| d.process_read(obj))
    }

    /// WRITE-COMPLETION for one group.
    pub fn process_completion(&mut self, group: GroupId, completion: WriteCompletion) -> bool {
        match self.groups.get_mut(&group) {
            Some(d) => {
                d.process_completion(completion);
                true
            }
            None => false,
        }
    }

    /// Inspect a group's detector.
    pub fn group(&self, group: GroupId) -> Option<&ConflictDetector> {
        self.groups.get(&group)
    }

    /// Tear the spine into independently-ownable per-group detectors, in
    /// group order. Each entry is the complete conflict-detection state of
    /// one group — a pipeline worker that takes one owns that group's
    /// packet path outright, with no shared state left behind. Reassemble
    /// an aggregate with [`from_groups`](Self::from_groups), or fold worker
    /// snapshots through [`SpineView`].
    pub fn into_groups(self) -> Vec<(GroupId, ConflictDetector)> {
        self.groups.into_iter().collect()
    }

    /// Rebuild a single-owner spine from per-group detectors (the inverse
    /// of [`into_groups`](Self::into_groups)).
    pub fn from_groups(
        incarnation: SwitchId,
        per_group_table: TableConfig,
        groups: impl IntoIterator<Item = (GroupId, ConflictDetector)>,
    ) -> Self {
        SpineSwitch {
            incarnation,
            per_group_table,
            groups: groups.into_iter().collect(),
        }
    }

    /// The hosted group ids, in order.
    pub fn group_ids(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.groups.keys().copied()
    }

    /// Control-plane stale-entry sweep (§5.2) over every hosted group.
    /// Returns the total number of entries removed.
    pub fn sweep(&mut self) -> usize {
        self.groups.values_mut().map(|d| d.sweep()).sum()
    }

    /// Total SRAM consumed across all hosted groups (§6.3's budget check).
    pub fn memory_bytes(&self) -> usize {
        self.groups.values().map(|d| d.memory_bytes()).sum()
    }

    /// SRAM consumed by one hosted group.
    pub fn group_memory_bytes(&self, group: GroupId) -> Option<usize> {
        self.groups.get(&group).map(|d| d.memory_bytes())
    }

    /// How many groups of this geometry fit in `sram_budget_bytes` — the
    /// quantitative form of "the capacity of a switch far exceeds that of a
    /// single replica group".
    pub fn capacity_in(per_group_table: TableConfig, sram_budget_bytes: usize) -> usize {
        let per_group =
            per_group_table.stages * per_group_table.slots_per_stage * per_group_table.entry_bytes;
        sram_budget_bytes / per_group.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::SwitchSeq;

    fn small_table() -> TableConfig {
        TableConfig {
            stages: 3,
            slots_per_stage: 667, // ≈ the §9.4 measured 2000-slot knee
            entry_bytes: 8,
        }
    }

    fn spine() -> SpineSwitch {
        let mut s = SpineSwitch::new(SwitchId(1), small_table());
        assert!(s.add_group(GroupId(1)));
        assert!(s.add_group(GroupId(2)));
        s
    }

    #[test]
    fn groups_are_isolated() {
        let mut s = spine();
        // Group 1 writes object 7; group 2's view of object 7 is clean.
        let Some(WriteDecision::Stamped(seq)) = s.process_write(GroupId(1), ObjectId(7)) else {
            panic!("write not stamped");
        };
        assert_eq!(s.group(GroupId(1)).unwrap().dirty_len(), 1);
        assert_eq!(s.group(GroupId(2)).unwrap().dirty_len(), 0);
        // Completions route per group.
        assert!(s.process_completion(
            GroupId(1),
            WriteCompletion {
                obj: ObjectId(7),
                seq,
            }
        ));
        assert_eq!(s.group(GroupId(1)).unwrap().dirty_len(), 0);
        // Group 1's fast path enabled; group 2 still gated.
        assert!(matches!(
            s.process_read(GroupId(1), ObjectId(9)),
            Some(ReadDecision::FastPath { .. })
        ));
        assert!(matches!(
            s.process_read(GroupId(2), ObjectId(9)),
            Some(ReadDecision::Normal)
        ));
    }

    #[test]
    fn sequence_numbers_are_per_group_but_share_the_incarnation() {
        let mut s = spine();
        let Some(WriteDecision::Stamped(a)) = s.process_write(GroupId(1), ObjectId(1)) else {
            panic!()
        };
        let Some(WriteDecision::Stamped(b)) = s.process_write(GroupId(2), ObjectId(1)) else {
            panic!()
        };
        // Same incarnation id; independent counters (groups never compare
        // each other's sequence numbers).
        assert_eq!(a.switch_id, SwitchId(1));
        assert_eq!(b.switch_id, SwitchId(1));
        assert_eq!(a, SwitchSeq::new(SwitchId(1), 1));
        assert_eq!(b, SwitchSeq::new(SwitchId(1), 1));
    }

    #[test]
    fn unknown_groups_are_rejected() {
        let mut s = spine();
        assert!(s.process_write(GroupId(99), ObjectId(1)).is_none());
        assert!(s.process_read(GroupId(99), ObjectId(1)).is_none());
        assert!(!s.process_completion(
            GroupId(99),
            WriteCompletion {
                obj: ObjectId(1),
                seq: SwitchSeq::new(SwitchId(1), 1),
            }
        ));
        assert!(!s.remove_group(GroupId(99)));
    }

    #[test]
    fn group_lifecycle_frees_memory() {
        let mut s = spine();
        let two = s.memory_bytes();
        s.add_group(GroupId(3));
        assert_eq!(s.group_count(), 3);
        assert_eq!(s.memory_bytes(), two / 2 * 3);
        assert!(s.remove_group(GroupId(3)));
        assert!(!s.add_group(GroupId(1)), "duplicate add rejected");
        assert_eq!(s.memory_bytes(), two);
    }

    #[test]
    fn split_groups_round_trip_and_views_aggregate() {
        let mut s = spine();
        let Some(WriteDecision::Stamped(seq)) = s.process_write(GroupId(1), ObjectId(7)) else {
            panic!()
        };
        s.process_completion(
            GroupId(1),
            WriteCompletion {
                obj: ObjectId(7),
                seq,
            },
        );
        s.process_write(GroupId(2), ObjectId(3));
        let total_mem = s.memory_bytes();

        // Tear down into exclusively-ownable per-group detectors…
        let groups = s.into_groups();
        assert_eq!(
            groups.iter().map(|(g, _)| *g).collect::<Vec<_>>(),
            vec![GroupId(1), GroupId(2)],
            "group order is deterministic"
        );
        // …whose independent snapshots fold back into the same accounting.
        let view = SpineView::new(
            groups
                .iter()
                .map(|(g, d)| GroupObservation {
                    group: *g,
                    stats: SwitchStats::default(),
                    fast_path_enabled: d.fast_path_enabled(),
                    memory_bytes: d.memory_bytes(),
                    dirty_len: d.dirty_len(),
                })
                .collect(),
        );
        assert_eq!(view.memory_bytes(), total_mem);
        assert_eq!(view.group_count(), 2);
        assert!(view.group(GroupId(1)).unwrap().fast_path_enabled);
        assert!(!view.group(GroupId(2)).unwrap().fast_path_enabled);
        assert_eq!(view.group(GroupId(2)).unwrap().dirty_len, 1);

        // And the single-owner shape reassembles losslessly.
        let rebuilt = SpineSwitch::from_groups(SwitchId(1), small_table(), groups);
        assert_eq!(rebuilt.memory_bytes(), total_mem);
        assert_eq!(rebuilt.group(GroupId(2)).unwrap().dirty_len(), 1);
        assert!(rebuilt.group(GroupId(1)).unwrap().fast_path_enabled());
    }

    #[test]
    fn spine_view_stats_merge_per_group_counters() {
        let mk = |group, fast, normal| GroupObservation {
            group: GroupId(group),
            stats: SwitchStats {
                reads_fast_path: fast,
                reads_normal: normal,
                ..SwitchStats::default()
            },
            fast_path_enabled: true,
            memory_bytes: 64,
            dirty_len: 0,
        };
        let view = SpineView::new(vec![mk(2, 5, 1), mk(0, 3, 2)]);
        assert_eq!(view.groups()[0].group, GroupId(0), "snapshots sorted");
        let total = view.stats();
        assert_eq!(total.reads_fast_path, 8);
        assert_eq!(total.reads_normal, 3);
        assert_eq!(view.memory_bytes(), 128);
    }

    #[test]
    fn a_ten_mb_switch_hosts_hundreds_of_groups() {
        // §6.3 + §9.4: with ~16 KB per group, a 10 MB switch serves ~600
        // replica groups — far beyond one group per switch.
        let capacity = SpineSwitch::capacity_in(small_table(), 10 * 1024 * 1024);
        assert!(capacity > 500, "only {capacity} groups fit");
        // And the full measured configuration is consistent: hosting 100
        // groups consumes ~1.5 MB.
        let mut s = SpineSwitch::new(SwitchId(1), small_table());
        for g in 0..100 {
            s.add_group(GroupId(g));
        }
        assert!(s.memory_bytes() < 2 * 1024 * 1024);
    }
}
