//! The §6.2 resource model and aggregate switch counters.
//!
//! The paper's back-of-envelope argument: with `n` stages of `m` slots at
//! utilization `u`, the switch tracks up to `u·n·m` outstanding writes. If a
//! write stays pending for `t` seconds, the sustainable write rate is
//! `u·n·m / t`; at write ratio `w` the total request rate is `u·n·m / (w·t)`.
//! The concrete example (n=3, m=64000, u=50 %, t=1 ms, w=5 %) supports
//! 96 MRPS of writes and 1.92 BRPS total in ~1.5 MB of SRAM — a small
//! fraction of a commodity switch's tens of MB.

/// Inputs to the capacity formula.
#[derive(Clone, Copy, Debug)]
pub struct ResourceModel {
    /// Pipeline stages used by the dirty set (`n`).
    pub stages: usize,
    /// Slots per stage (`m`).
    pub slots_per_stage: usize,
    /// Achievable hash-table utilization (`u`, 0..=1).
    pub utilization: f64,
    /// Mean time a write stays pending, in seconds (`t`).
    pub write_duration_s: f64,
    /// Fraction of requests that are writes (`w`, 0..=1).
    pub write_ratio: f64,
    /// SRAM bytes per entry (id + seq).
    pub entry_bytes: usize,
}

impl ResourceModel {
    /// The paper's concrete example configuration.
    pub fn paper_example() -> Self {
        ResourceModel {
            stages: 3,
            slots_per_stage: 64_000,
            utilization: 0.5,
            write_duration_s: 1e-3,
            write_ratio: 0.05,
            entry_bytes: 8,
        }
    }

    /// Maximum writes outstanding at once: `u·n·m`.
    pub fn max_pending_writes(&self) -> f64 {
        self.utilization * self.stages as f64 * self.slots_per_stage as f64
    }

    /// Sustainable write throughput in requests/second: `u·n·m / t`.
    pub fn write_throughput(&self) -> f64 {
        self.max_pending_writes() / self.write_duration_s
    }

    /// Sustainable total throughput in requests/second: `u·n·m / (w·t)`.
    pub fn total_throughput(&self) -> f64 {
        self.write_throughput() / self.write_ratio
    }

    /// SRAM consumed by the dirty set.
    pub fn memory_bytes(&self) -> usize {
        self.stages * self.slots_per_stage * self.entry_bytes
    }

    /// Fraction of a switch's SRAM budget this configuration uses.
    pub fn memory_fraction_of(&self, switch_sram_bytes: usize) -> f64 {
        self.memory_bytes() as f64 / switch_sram_bytes as f64
    }
}

/// Aggregate data-plane counters for one switch incarnation. The driver
/// increments these as it processes packets; benches report them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Reads routed to a single random replica.
    pub reads_fast_path: u64,
    /// Reads routed through the normal protocol (contended or gated).
    pub reads_normal: u64,
    /// Writes stamped and forwarded.
    pub writes_forwarded: u64,
    /// Writes dropped for lack of a dirty-set slot.
    pub writes_dropped: u64,
    /// WRITE-COMPLETIONs processed (standalone + piggybacked).
    pub completions: u64,
    /// Protocol-internal packets forwarded by plain L2/L3.
    pub forwarded_other: u64,
}

impl SwitchStats {
    /// Fold another counter set into this one (spine switches aggregate
    /// per-group counters into a whole-switch view).
    pub fn merge(&mut self, other: &SwitchStats) {
        self.reads_fast_path += other.reads_fast_path;
        self.reads_normal += other.reads_normal;
        self.writes_forwarded += other.writes_forwarded;
        self.writes_dropped += other.writes_dropped;
        self.completions += other.completions;
        self.forwarded_other += other.forwarded_other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_numbers() {
        let m = ResourceModel::paper_example();
        assert_eq!(m.max_pending_writes(), 96_000.0);
        // 96 MRPS of writes.
        assert_eq!(m.write_throughput(), 96_000_000.0);
        // 1.92 BRPS total.
        assert_eq!(m.total_throughput(), 1_920_000_000.0);
        // ~1.5 MB of SRAM.
        assert_eq!(m.memory_bytes(), 1_536_000);
        // "only 1.6 % (0.8 %) for 10 MB (20 MB) memory" — §9.4 quotes the
        // 2000-slot configuration; the full 192K-slot table is ~15 %/7.5 %.
        let ten_mb = 10 * 1000 * 1000;
        assert!((m.memory_fraction_of(ten_mb) - 0.1536).abs() < 1e-6);
    }

    #[test]
    fn measured_config_small_footprint() {
        // §9.4: 2000 slots × 8 bytes = 16 KB ≈ 1.6 ‰ of 10 MB.
        let m = ResourceModel {
            stages: 1,
            slots_per_stage: 2000,
            utilization: 0.5,
            write_duration_s: 1e-3,
            write_ratio: 0.05,
            entry_bytes: 8,
        };
        assert_eq!(m.memory_bytes(), 16_000);
        assert!((m.memory_fraction_of(10_000_000) - 0.0016).abs() < 1e-9);
    }

    #[test]
    fn throughput_scales_inversely_with_write_duration() {
        let fast = ResourceModel {
            write_duration_s: 0.5e-3,
            ..ResourceModel::paper_example()
        };
        assert_eq!(
            fast.write_throughput(),
            2.0 * ResourceModel::paper_example().write_throughput()
        );
    }
}
