//! The multi-stage hash table holding the dirty set (Figure 4).
//!
//! One register array per stage, a different hash function per stage. Each
//! data-plane operation is a single pipeline traversal touching each stage's
//! array at most once:
//!
//! * **Insertion** (write): the entry is written into the first stage whose
//!   slot is empty *or already holds the same object* (which updates its
//!   sequence number, keeping only the largest per object as §5 requires).
//!   If every stage's slot is taken by a different object, the write is
//!   **dropped** — the behaviour Figure 8 measures under skew.
//! * **Search** (read): all stages are probed; the largest matching sequence
//!   number wins.
//! * **Deletion** (write completion): all stages are probed; entries for the
//!   object with `seq <= completion.seq` are cleared.
//!
//! Lazy cleanup (§5.2): because writes are processed in order, any entry
//! with `seq <= last_committed` is stale; reads scrub such entries as they
//! probe, and the control plane can sweep the whole table periodically.

use harmonia_types::{ObjectId, SwitchSeq};

use crate::hash::StageHash;
use crate::register::RegisterArray;

/// One register slot: an object id and the largest pending sequence number.
/// `seq == SwitchSeq::ZERO` means the slot is empty (real switch ids start
/// at 1, so no live entry can carry the sentinel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Object occupying the slot (meaningless when empty).
    pub obj: ObjectId,
    /// Largest pending write sequence number for `obj`.
    pub seq: SwitchSeq,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            obj: ObjectId(0),
            seq: SwitchSeq::ZERO,
        }
    }
}

impl Slot {
    fn is_empty(self) -> bool {
        self.seq == SwitchSeq::ZERO
    }
}

/// Table geometry.
#[derive(Clone, Copy, Debug)]
pub struct TableConfig {
    /// Number of pipeline stages dedicated to the dirty set.
    pub stages: usize,
    /// Slots per stage.
    pub slots_per_stage: usize,
    /// SRAM bytes per entry for the resource model (32-bit id + 32-bit seq
    /// = 8 in the paper's configuration).
    pub entry_bytes: usize,
}

impl Default for TableConfig {
    /// The prototype configuration from §8: 3 stages × 64K slots.
    fn default() -> Self {
        TableConfig {
            stages: 3,
            slots_per_stage: 64 * 1024,
            entry_bytes: 8,
        }
    }
}

/// Running counters for table behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Successful insertions (including in-place sequence updates).
    pub inserts: u64,
    /// Writes dropped because all stages collided.
    pub insert_drops: u64,
    /// Entries removed by write completions.
    pub deletes: u64,
    /// Stale entries scrubbed lazily by reads.
    pub scrubbed_by_reads: u64,
    /// Stale entries removed by control-plane sweeps.
    pub swept: u64,
}

/// The dirty set.
#[derive(Clone, Debug)]
pub struct MultiStageHashTable {
    stages: Vec<(StageHash, RegisterArray<Slot>)>,
    stats: TableStats,
}

impl MultiStageHashTable {
    /// Build a table with the given geometry.
    pub fn new(config: TableConfig) -> Self {
        assert!(config.stages > 0, "need at least one stage");
        assert!(config.slots_per_stage > 0, "need at least one slot");
        MultiStageHashTable {
            stages: (0..config.stages)
                .map(|s| {
                    (
                        StageHash::for_stage(s as u32),
                        RegisterArray::new(config.slots_per_stage, config.entry_bytes),
                    )
                })
                .collect(),
            stats: TableStats::default(),
        }
    }

    /// Insert `obj` with pending sequence `seq`, or refresh its existing
    /// entry. Returns `false` if the write must be dropped (full collision).
    pub fn insert(&mut self, obj: ObjectId, seq: SwitchSeq) -> bool {
        debug_assert!(seq > SwitchSeq::ZERO, "real writes have non-sentinel seqs");
        for (hash, array) in &mut self.stages {
            let idx = hash.slot(obj, array.len());
            array.begin_packet();
            let done = array.access(idx, |slot| {
                if slot.is_empty() || slot.obj == obj {
                    *slot = Slot { obj, seq };
                    true
                } else {
                    false
                }
            });
            if done {
                self.stats.inserts += 1;
                return true;
            }
        }
        self.stats.insert_drops += 1;
        false
    }

    /// Probe for `obj`; returns the largest pending sequence number if the
    /// object is dirty.
    pub fn search(&mut self, obj: ObjectId) -> Option<SwitchSeq> {
        let mut best: Option<SwitchSeq> = None;
        for (hash, array) in &mut self.stages {
            let idx = hash.slot(obj, array.len());
            array.begin_packet();
            array.access(idx, |slot| {
                if !slot.is_empty() && slot.obj == obj {
                    best = Some(best.map_or(slot.seq, |b: SwitchSeq| b.max(slot.seq)));
                }
            });
        }
        best
    }

    /// Probe for `obj` while lazily scrubbing stale entries: any matching
    /// entry with `seq <= last_committed` denotes a write that has already
    /// completed (writes are processed in order) and is cleared in passing.
    /// Returns the largest *live* pending sequence number.
    pub fn search_and_scrub(
        &mut self,
        obj: ObjectId,
        last_committed: SwitchSeq,
    ) -> Option<SwitchSeq> {
        let mut best: Option<SwitchSeq> = None;
        let mut scrubbed = 0;
        for (hash, array) in &mut self.stages {
            let idx = hash.slot(obj, array.len());
            array.begin_packet();
            array.access(idx, |slot| {
                if !slot.is_empty() && slot.obj == obj {
                    if slot.seq <= last_committed {
                        *slot = Slot::default();
                        scrubbed += 1;
                    } else {
                        best = Some(best.map_or(slot.seq, |b: SwitchSeq| b.max(slot.seq)));
                    }
                }
            });
        }
        self.stats.scrubbed_by_reads += scrubbed;
        best
    }

    /// Process a write completion: clear every entry for `obj` whose pending
    /// sequence number is covered by `seq`. Returns how many were cleared.
    pub fn delete(&mut self, obj: ObjectId, seq: SwitchSeq) -> usize {
        let mut removed = 0;
        for (hash, array) in &mut self.stages {
            let idx = hash.slot(obj, array.len());
            array.begin_packet();
            array.access(idx, |slot| {
                if !slot.is_empty() && slot.obj == obj && slot.seq <= seq {
                    *slot = Slot::default();
                    removed += 1;
                }
            });
        }
        self.stats.deletes += removed as u64;
        removed
    }

    /// Control-plane sweep clearing every entry with `seq <= last_committed`
    /// (§5.2 "this removal can also be done periodically").
    pub fn sweep(&mut self, last_committed: SwitchSeq) -> usize {
        let mut removed = 0;
        for (_, array) in &mut self.stages {
            for slot in array.iter_mut() {
                if !slot.is_empty() && slot.seq <= last_committed {
                    *slot = Slot::default();
                    removed += 1;
                }
            }
        }
        self.stats.swept += removed as u64;
        removed
    }

    /// Clear everything (switch reboot: all soft state is lost).
    pub fn clear(&mut self) {
        for (_, array) in &mut self.stages {
            for slot in array.iter_mut() {
                *slot = Slot::default();
            }
        }
    }

    /// Occupied slots across all stages.
    pub fn occupancy(&self) -> usize {
        self.stages
            .iter()
            .map(|(_, a)| a.iter().filter(|s| !s.is_empty()).count())
            .sum()
    }

    /// Occupied slots per stage (front to back).
    pub fn occupancy_per_stage(&self) -> Vec<usize> {
        self.stages
            .iter()
            .map(|(_, a)| a.iter().filter(|s| !s.is_empty()).count())
            .collect()
    }

    /// Total slots across all stages.
    pub fn capacity(&self) -> usize {
        self.stages.iter().map(|(_, a)| a.len()).sum()
    }

    /// SRAM consumed under the resource model.
    pub fn memory_bytes(&self) -> usize {
        self.stages.iter().map(|(_, a)| a.memory_bytes()).sum()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }
}

impl Default for MultiStageHashTable {
    fn default() -> Self {
        MultiStageHashTable::new(TableConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::SwitchId;

    fn seq(n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(1), n)
    }

    fn small() -> MultiStageHashTable {
        MultiStageHashTable::new(TableConfig {
            stages: 3,
            slots_per_stage: 16,
            entry_bytes: 8,
        })
    }

    #[test]
    fn insert_search_delete_roundtrip() {
        let mut t = small();
        assert!(t.insert(ObjectId(1), seq(10)));
        assert_eq!(t.search(ObjectId(1)), Some(seq(10)));
        assert_eq!(t.search(ObjectId(2)), None);
        assert_eq!(t.delete(ObjectId(1), seq(10)), 1);
        assert_eq!(t.search(ObjectId(1)), None);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn reinsert_updates_sequence_in_place() {
        let mut t = small();
        t.insert(ObjectId(1), seq(10));
        t.insert(ObjectId(1), seq(20));
        assert_eq!(t.search(ObjectId(1)), Some(seq(20)));
        assert_eq!(t.occupancy(), 1, "no duplicate entry created");
    }

    #[test]
    fn delete_ignores_newer_pending_write() {
        // Completion of write 10 must not clear the entry tracking write 20
        // (Algorithm 1 line 6: only delete when pkt.seq >= stored seq).
        let mut t = small();
        t.insert(ObjectId(1), seq(20));
        assert_eq!(t.delete(ObjectId(1), seq(10)), 0);
        assert_eq!(t.search(ObjectId(1)), Some(seq(20)));
    }

    #[test]
    fn full_collision_drops_write() {
        let mut t = MultiStageHashTable::new(TableConfig {
            stages: 2,
            slots_per_stage: 1,
            entry_bytes: 8,
        });
        // With one slot per stage every object maps to slot 0 in both stages:
        // the third distinct object must be dropped.
        assert!(t.insert(ObjectId(1), seq(1)));
        assert!(t.insert(ObjectId(2), seq(2)));
        assert!(!t.insert(ObjectId(3), seq(3)));
        assert_eq!(t.stats().insert_drops, 1);
        assert_eq!(t.search(ObjectId(3)), None);
    }

    #[test]
    fn scrub_on_read_removes_stale_entries() {
        let mut t = small();
        t.insert(ObjectId(1), seq(5));
        // The completion for write 5 was lost, but a later write committed:
        // last_committed advanced past 5, so the entry is stale.
        assert_eq!(t.search_and_scrub(ObjectId(1), seq(7)), None);
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats().scrubbed_by_reads, 1);
    }

    #[test]
    fn scrub_keeps_live_entries() {
        let mut t = small();
        t.insert(ObjectId(1), seq(9));
        assert_eq!(t.search_and_scrub(ObjectId(1), seq(7)), Some(seq(9)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn sweep_clears_only_stale() {
        let mut t = small();
        for i in 1..=10u64 {
            assert!(t.insert(ObjectId(i as u32), seq(i)));
        }
        let removed = t.sweep(seq(6));
        assert_eq!(removed, 6);
        assert_eq!(t.occupancy(), 4);
        for i in 7..=10u64 {
            assert_eq!(t.search(ObjectId(i as u32)), Some(seq(i)));
        }
    }

    #[test]
    fn duplicate_entries_across_stages_are_all_cleared_by_delete() {
        // Construct the duplicate scenario: obj A lands in stage 2 because
        // stage 1 is blocked by B; B completes, freeing stage 1; A's next
        // write then occupies stage 1, leaving a stale copy in stage 2.
        let mut t = MultiStageHashTable::new(TableConfig {
            stages: 2,
            slots_per_stage: 1,
            entry_bytes: 8,
        });
        assert!(t.insert(ObjectId(66), seq(1))); // B at stage 1
        assert!(t.insert(ObjectId(65), seq(2))); // A at stage 2
        assert_eq!(t.delete(ObjectId(66), seq(1)), 1); // B completes
        assert!(t.insert(ObjectId(65), seq(3))); // A again -> stage 1
        assert_eq!(t.occupancy(), 2, "A now present twice");
        // Search reports the largest pending seq.
        assert_eq!(t.search(ObjectId(65)), Some(seq(3)));
        // The completion for seq 3 covers both copies.
        assert_eq!(t.delete(ObjectId(65), seq(3)), 2);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn clear_wipes_everything() {
        let mut t = small();
        for i in 1..=5u64 {
            t.insert(ObjectId(i as u32), seq(i));
        }
        t.clear();
        assert_eq!(t.occupancy(), 0);
        for i in 1..=5u64 {
            assert_eq!(t.search(ObjectId(i as u32)), None);
        }
    }

    #[test]
    fn memory_accounting_matches_paper_example() {
        // §6.2: 3 stages × 64K slots × (32-bit id + 32-bit seq) = 1.5 MB.
        let t = MultiStageHashTable::new(TableConfig {
            stages: 3,
            slots_per_stage: 64_000,
            entry_bytes: 8,
        });
        assert_eq!(t.memory_bytes(), 3 * 64_000 * 8);
        assert!((t.memory_bytes() as f64 / (1024.0 * 1024.0) - 1.46).abs() < 0.1);
    }

    #[test]
    fn occupancy_per_stage_prefers_early_stages() {
        let mut t = MultiStageHashTable::new(TableConfig {
            stages: 3,
            slots_per_stage: 64,
            entry_bytes: 8,
        });
        for i in 1..=60u64 {
            t.insert(ObjectId(i as u32), seq(i));
        }
        let per = t.occupancy_per_stage();
        assert_eq!(per.iter().sum::<usize>(), 60);
        assert!(per[0] > per[1], "first stage fills first: {per:?}");
    }
}
