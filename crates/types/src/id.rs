//! Identifier newtypes.
//!
//! Harmonia's switch operates on a *fixed-width* object identifier so that the
//! dirty set fits in register arrays. Application keys of arbitrary length are
//! reduced to an [`ObjectId`] with [`ObjectId::from_key`]; a collision can only
//! make the switch *more* conservative (it may believe an object is contended
//! when it is not), which degrades performance but never consistency (§6.1).

/// Fixed-width (32-bit) object identifier carried in the Harmonia header.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Fold an arbitrary-length application key into a fixed-width id.
    ///
    /// Uses an FNV-1a 32-bit hash: tiny, stable, and endian-independent.
    /// Clients keep the original key in the packet payload; the switch only
    /// ever sees this 32-bit digest.
    pub fn from_key(key: &[u8]) -> Self {
        const FNV_OFFSET: u32 = 0x811c_9dc5;
        const FNV_PRIME: u32 = 0x0100_0193;
        let mut h = FNV_OFFSET;
        for &b in key {
            h ^= u32::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        ObjectId(h)
    }
}

impl std::fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj:{:08x}", self.0)
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

/// Identifies one switch incarnation. A rebooted or replacement switch gets a
/// strictly larger id, which orders its sequence numbers after all of its
/// predecessor's (§5.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SwitchId(pub u32);

/// Index of a replica within its replica group (0-based).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Convenience accessor as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a client endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClientId(pub u32);

/// Per-client monotonically increasing request number; `(ClientId, RequestId)`
/// uniquely names a client operation and lets replicas deduplicate retries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RequestId(pub u64);

/// The globally unique name of one client operation, used to correlate
/// observability trace events across nodes: every hop a request takes —
/// client send, spine verdict, replica execute, reply — is stamped with the
/// same `TraceId`, so a request's lifecycle can be reassembled from the
/// per-thread trace rings after the fact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TraceId {
    /// The issuing client.
    pub client: ClientId,
    /// The client's per-request sequence number.
    pub request: RequestId,
}

impl TraceId {
    /// Pair a client with one of its request numbers.
    pub fn new(client: ClientId, request: RequestId) -> Self {
        TraceId { client, request }
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}#{}", self.client.0, self.request.0)
    }
}

/// Address of any node in the deployment: clients, replicas, and the switch.
///
/// The live runtime maps these to channel endpoints; the simulator maps them
/// to actor slots. The switch's forwarding table maps `Replica` ids to
/// "ports" exactly like the replica-address match-action table in §5.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum NodeId {
    /// A client endpoint.
    Client(ClientId),
    /// A storage replica.
    Replica(ReplicaId),
    /// The (single active) in-network request scheduler.
    Switch(SwitchId),
    /// An external configuration service / control-plane endpoint.
    Controller,
}

impl NodeId {
    /// True if this node is a replica.
    pub fn is_replica(self) -> bool {
        matches!(self, NodeId::Replica(_))
    }

    /// Extract the replica id, if this is a replica.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_from_key_is_deterministic() {
        let a = ObjectId::from_key(b"user:1001");
        let b = ObjectId::from_key(b"user:1001");
        assert_eq!(a, b);
    }

    #[test]
    fn object_id_from_key_differs_for_typical_keys() {
        // Not a collision-freedom guarantee, just a sanity check that the
        // hash actually mixes.
        let ids: std::collections::HashSet<_> = (0..1000u32)
            .map(|i| ObjectId::from_key(format!("key-{i}").as_bytes()))
            .collect();
        assert!(ids.len() > 990, "too many collisions: {}", 1000 - ids.len());
    }

    #[test]
    fn node_id_replica_accessors() {
        let n = NodeId::Replica(ReplicaId(3));
        assert!(n.is_replica());
        assert_eq!(n.as_replica(), Some(ReplicaId(3)));
        assert_eq!(NodeId::Controller.as_replica(), None);
        assert!(!NodeId::Client(ClientId(0)).is_replica());
    }

    #[test]
    fn switch_id_orders() {
        assert!(SwitchId(2) > SwitchId(1));
    }
}
