//! Core vocabulary types shared by every Harmonia crate.
//!
//! This crate defines the data that crosses component boundaries in the
//! Harmonia architecture (VLDB 2019):
//!
//! * [`ObjectId`] — the fixed-width object identifier carried in the custom
//!   packet header and tracked by the switch's dirty set. Variable-length
//!   application keys are folded to an `ObjectId` by hashing (§6.1 of the
//!   paper), which may only ever cause false *conflicts*, never missed ones.
//! * [`SwitchSeq`] — the per-write sequence number, lexicographically ordered
//!   by `(switch_id, seq)` so that a replacement switch can never reuse a
//!   number issued by its predecessor (§5.3).
//! * [`Packet`] / [`PacketBody`] — the custom L4 payload understood by the
//!   switch data plane, the replica shim layer, and the client library.
//! * a compact binary wire codec ([`wire`]) used by the live (threaded)
//!   runtime; the simulator passes packets by value.
//!
//! Everything here is deliberately small, `Clone`, and free of interior
//! mutability: packets are values that flow through state machines.

#![forbid(unsafe_code)]

pub mod id;
pub mod packet;
pub mod seq;
pub mod time;
pub mod wire;

pub use id::{ClientId, NodeId, ObjectId, ReplicaId, RequestId, SwitchId, TraceId};
pub use packet::{
    ClientReply, ClientRequest, ControlMsg, OpKind, Packet, PacketBody, PacketFlags, ReadMode,
    WriteCompletion, WriteOutcome,
};
pub use seq::SwitchSeq;
pub use time::{Duration, Instant};
pub use wire::{decode_frame, decode_frame_shared, encode_frame, Wire, MAX_FRAME_BYTES};

/// Errors surfaced by the types layer (wire decoding in practice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// The buffer ended before a complete frame was decoded.
    Truncated {
        /// How many more bytes were needed, when known.
        needed: usize,
    },
    /// An unknown discriminant was found while decoding.
    BadDiscriminant {
        /// Which field carried the bad value.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A length prefix exceeded the configured sanity bound.
    OversizedField {
        /// Which field was oversized.
        field: &'static str,
        /// The claimed length.
        len: usize,
    },
    /// A frame body declared more bytes than its value actually encodes:
    /// decoding succeeded but left unconsumed bytes inside the declared
    /// length. A well-formed peer never produces this, so it is rejected
    /// rather than silently ignored.
    TrailingBytes {
        /// How many declared-but-unconsumed bytes were left.
        len: usize,
    },
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::Truncated { needed } => {
                write!(f, "truncated frame: {needed} more bytes required")
            }
            TypeError::BadDiscriminant { field, value } => {
                write!(f, "bad discriminant {value} for field {field}")
            }
            TypeError::OversizedField { field, len } => {
                write!(f, "field {field} claims oversized length {len}")
            }
            TypeError::TrailingBytes { len } => {
                write!(f, "frame body left {len} undeclared trailing bytes")
            }
        }
    }
}

impl std::error::Error for TypeError {}
