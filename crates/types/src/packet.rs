//! The Harmonia packet format.
//!
//! Clients talk to the storage rack with a custom L4 payload the switch
//! understands (§4). The switch inspects two header fields — the operation
//! type and the affected object id — and, for writes and fast-path reads,
//! stamps additional fields (the sequence number, the last-committed point).
//!
//! Protocol-internal traffic (chain forwarding, PREPARE/PREPARE-OK, …) also
//! traverses the switch physically but is routed by ordinary L2/L3
//! forwarding; we model it as an opaque generic payload `T` in
//! [`PacketBody::Protocol`].

use bytes::Bytes;

use crate::id::{ClientId, NodeId, ObjectId, ReplicaId, RequestId, SwitchId};
use crate::seq::SwitchSeq;

/// Operation type carried in the Harmonia header.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// A read of one object.
    Read,
    /// A write (blind put) of one object.
    Write,
}

/// How a read is being routed, decided by the switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReadMode {
    /// Follow the normal replication protocol (contended object, or the
    /// switch has not yet enabled fast-path reads).
    Normal,
    /// Single-replica fast path: the packet is flagged so the chosen replica
    /// may answer directly, subject to the last-committed guard (§5.2).
    FastPath {
        /// Which switch incarnation issued this fast-path read; replicas
        /// only honour the active switch (§5.3).
        switch: SwitchId,
    },
}

impl ReadMode {
    /// True for fast-path reads.
    pub fn is_fast_path(self) -> bool {
        matches!(self, ReadMode::FastPath { .. })
    }
}

/// Bit flags carried in the wire header.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct PacketFlags(pub u8);

impl PacketFlags {
    /// The read was routed on the single-replica fast path.
    pub const FAST_PATH: PacketFlags = PacketFlags(0b0000_0001);
    /// The reply piggybacks a write completion (§5.1, Figure 2b).
    pub const PIGGYBACK_COMPLETION: PacketFlags = PacketFlags(0b0000_0010);

    /// Test whether all bits of `flag` are set.
    pub fn contains(self, flag: PacketFlags) -> bool {
        self.0 & flag.0 == flag.0
    }

    /// Set the bits of `flag`.
    pub fn insert(&mut self, flag: PacketFlags) {
        self.0 |= flag.0;
    }
}

/// A client-issued storage request, as seen on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClientRequest {
    /// Issuing client.
    pub client: ClientId,
    /// Per-client request number (for reply matching and dedup).
    pub request: RequestId,
    /// Read or write.
    pub op: OpKind,
    /// Fixed-width object id (hash of `key` for variable-length keys).
    pub obj: ObjectId,
    /// The original application key, carried in the payload (§6.1).
    pub key: Bytes,
    /// New value; `Some` iff `op == Write`.
    pub value: Option<Bytes>,
    /// Sequence number stamped by the switch onto writes (Algorithm 1 l.2–3).
    pub seq: Option<SwitchSeq>,
    /// Last-committed point stamped onto fast-path reads (Algorithm 1 l.11).
    pub last_committed: Option<SwitchSeq>,
    /// Routing decision for reads.
    pub read_mode: ReadMode,
}

impl ClientRequest {
    /// A fresh read request, before the switch has seen it.
    pub fn read(client: ClientId, request: RequestId, key: impl Into<Bytes>) -> Self {
        let key = key.into();
        ClientRequest {
            client,
            request,
            op: OpKind::Read,
            obj: ObjectId::from_key(&key),
            key,
            value: None,
            seq: None,
            last_committed: None,
            read_mode: ReadMode::Normal,
        }
    }

    /// A fresh write request, before the switch has seen it.
    pub fn write(
        client: ClientId,
        request: RequestId,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Self {
        let key = key.into();
        ClientRequest {
            client,
            request,
            op: OpKind::Write,
            obj: ObjectId::from_key(&key),
            key,
            value: Some(value.into()),
            seq: None,
            last_committed: None,
            read_mode: ReadMode::Normal,
        }
    }
}

/// Outcome of a write, reported to the client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteOutcome {
    /// The write was committed by the replication protocol.
    Committed,
    /// The switch dropped the write because the dirty set had no free slot
    /// for the object (§6.1 "the write is dropped if no slot is available").
    /// Clients should back off and retry.
    DroppedBySwitch,
    /// The replication protocol rejected the write (e.g. it arrived out of
    /// sequence-number order and the in-order rule discarded it). Retry.
    Rejected,
}

/// A reply to a [`ClientRequest`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClientReply {
    /// Destination client.
    pub client: ClientId,
    /// The replica that produced this reply. Multi-reply protocols
    /// (NOPaxos) count a write committed only after a quorum of *distinct*
    /// repliers: retries reuse the request id (exactly-once sessions), so
    /// without provenance a late original reply plus a replica's
    /// deduplicated re-send would be counted as two acknowledgements.
    pub from: ReplicaId,
    /// Request this reply answers.
    pub request: RequestId,
    /// Object concerned (for switch-side piggyback processing).
    pub obj: ObjectId,
    /// Read result: the value, or `None` if the key is unset. Writes carry
    /// `None`.
    pub value: Option<Bytes>,
    /// Write outcome; `None` for read replies.
    pub write_outcome: Option<WriteOutcome>,
    /// Write completion piggybacked on the reply (Figure 2b): the switch
    /// snoops replies flowing back through it and processes this field as a
    /// WRITE-COMPLETION before forwarding the reply to the client.
    pub completion: Option<WriteCompletion>,
}

/// Notification that a write is fully committed (§5.1, "write completions").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WriteCompletion {
    /// The object that was written.
    pub obj: ObjectId,
    /// The sequence number of the committed write.
    pub seq: SwitchSeq,
}

/// Switch control-plane commands (§5.3, "handling server failures").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ControlMsg {
    /// Add a recovered/replacement replica to the forwarding table.
    AddReplica(ReplicaId),
    /// Remove a failed replica from the forwarding table so no further
    /// requests are scheduled to it.
    RemoveReplica(ReplicaId),
    /// Replace the full replica set.
    SetReplicas(Vec<ReplicaId>),
    /// Gate a recovering replica: keep it in the membership (so protocol
    /// traffic reaches it) but exclude it from read scheduling — both the
    /// fast path and normal-path role selection — until it has caught up
    /// past every write in its recovery window.
    GateReplica(ReplicaId),
    /// Lift a replica's gate. `caught_up` is the sequence point the replica
    /// has provably applied through; the switch only re-admits it if that
    /// point covers the gate's floor (the last-committed point when the
    /// gate was installed), so a stale or reordered ungate can never expose
    /// an un-caught-up replica to reads.
    UngateReplica {
        /// The recovered replica.
        replica: ReplicaId,
        /// Highest sequence point the replica has applied.
        caught_up: SwitchSeq,
    },
}

/// Everything that can flow over a link.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PacketBody<T> {
    /// Client → rack storage traffic; the switch runs Algorithm 1 on these.
    Request(ClientRequest),
    /// Rack → client replies; the switch snoops piggybacked completions.
    Reply(ClientReply),
    /// Standalone WRITE-COMPLETION from the replication protocol.
    Completion(WriteCompletion),
    /// Protocol-internal message, routed by plain L2/L3 forwarding.
    Protocol(T),
    /// Control-plane command for the switch.
    Control(ControlMsg),
}

impl<T> PacketBody<T> {
    /// The object this packet concerns, when it names one — the key a spine
    /// switch shard-routes on (§6.3). Requests, replies, and completions
    /// carry an object; control and protocol traffic do not (control is
    /// addressed by replica, protocol traffic is plain L2/L3 forwarding).
    pub fn object(&self) -> Option<ObjectId> {
        match self {
            PacketBody::Request(req) => Some(req.obj),
            PacketBody::Reply(reply) => Some(reply.obj),
            PacketBody::Completion(c) => Some(c.obj),
            PacketBody::Protocol(_) | PacketBody::Control(_) => None,
        }
    }
}

/// A packet in flight: source, destination, payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet<T> {
    /// Sender.
    pub src: NodeId,
    /// Receiver. For client requests this is initially the switch; the
    /// switch rewrites it to the chosen replica (Algorithm 1 l.12–13).
    pub dst: NodeId,
    /// Payload.
    pub body: PacketBody<T>,
}

impl<T> Packet<T> {
    /// Construct a packet.
    pub fn new(src: NodeId, dst: NodeId, body: PacketBody<T>) -> Self {
        Packet { src, dst, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors_fill_header() {
        let r = ClientRequest::read(ClientId(1), RequestId(7), &b"k1"[..]);
        assert_eq!(r.op, OpKind::Read);
        assert_eq!(r.obj, ObjectId::from_key(b"k1"));
        assert!(r.value.is_none());
        assert_eq!(r.read_mode, ReadMode::Normal);

        let w = ClientRequest::write(ClientId(1), RequestId(8), &b"k1"[..], &b"v"[..]);
        assert_eq!(w.op, OpKind::Write);
        assert_eq!(w.value.as_deref(), Some(&b"v"[..]));
        assert!(
            w.seq.is_none(),
            "sequence is stamped by the switch, not the client"
        );
    }

    #[test]
    fn flags_bit_ops() {
        let mut f = PacketFlags::default();
        assert!(!f.contains(PacketFlags::FAST_PATH));
        f.insert(PacketFlags::FAST_PATH);
        assert!(f.contains(PacketFlags::FAST_PATH));
        assert!(!f.contains(PacketFlags::PIGGYBACK_COMPLETION));
        f.insert(PacketFlags::PIGGYBACK_COMPLETION);
        assert!(f.contains(PacketFlags::PIGGYBACK_COMPLETION));
    }

    #[test]
    fn read_mode_fast_path_detection() {
        assert!(!ReadMode::Normal.is_fast_path());
        assert!(ReadMode::FastPath {
            switch: SwitchId(1)
        }
        .is_fast_path());
    }
}
