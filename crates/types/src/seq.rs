//! Switch-issued sequence numbers.
//!
//! Every write passing the Harmonia switch is stamped with a fresh sequence
//! number. To survive switch replacement without number reuse, a sequence
//! number is the pair `(switch_id, seq)` ordered lexicographically with the
//! switch id taken first (§5.3 of the paper). The paper notes strict
//! monotonicity is all that matters — gaps are fine.

use crate::id::SwitchId;

/// A write sequence number: `(switch_id, seq)`, compared lexicographically.
///
/// `SwitchSeq::ZERO` (`switch 0, seq 0`) is a sentinel smaller than every
/// number a real switch can issue (real switch ids start at 1). It plays the
/// role of `BottomWrite` in the paper's TLA+ specification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchSeq {
    /// The incarnation of the switch that issued this number.
    pub switch_id: SwitchId,
    /// Monotonic counter within that incarnation.
    pub seq: u64,
}

impl SwitchSeq {
    /// Sentinel below all real sequence numbers (the TLA+ `BottomWrite`).
    pub const ZERO: SwitchSeq = SwitchSeq {
        switch_id: SwitchId(0),
        seq: 0,
    };

    /// Build a sequence number.
    pub fn new(switch_id: SwitchId, seq: u64) -> Self {
        SwitchSeq { switch_id, seq }
    }

    /// The next number in this switch incarnation.
    pub fn next(self) -> Self {
        SwitchSeq {
            switch_id: self.switch_id,
            seq: self.seq + 1,
        }
    }

    /// True if this is the sentinel.
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl Default for SwitchSeq {
    /// The sentinel [`SwitchSeq::ZERO`].
    fn default() -> Self {
        SwitchSeq::ZERO
    }
}

impl std::fmt::Debug for SwitchSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.switch_id.0, self.seq)
    }
}

impl std::fmt::Display for SwitchSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_minimal() {
        let real = SwitchSeq::new(SwitchId(1), 0);
        assert!(SwitchSeq::ZERO < real);
        assert!(SwitchSeq::ZERO.is_zero());
        assert!(!real.is_zero());
    }

    #[test]
    fn lexicographic_ordering_prefers_switch_id() {
        // A brand-new switch's very first number outranks a huge number from
        // the previous incarnation: the property §5.3 relies on.
        let old = SwitchSeq::new(SwitchId(1), u64::MAX);
        let new = SwitchSeq::new(SwitchId(2), 1);
        assert!(new > old);
    }

    #[test]
    fn next_increments_within_incarnation() {
        let s = SwitchSeq::new(SwitchId(3), 41);
        let n = s.next();
        assert_eq!(n.switch_id, SwitchId(3));
        assert_eq!(n.seq, 42);
        assert!(n > s);
    }

    #[test]
    fn ordering_is_total_on_samples() {
        let mut xs = vec![
            SwitchSeq::new(SwitchId(2), 0),
            SwitchSeq::new(SwitchId(1), 5),
            SwitchSeq::ZERO,
            SwitchSeq::new(SwitchId(1), 1),
        ];
        xs.sort();
        assert_eq!(
            xs,
            vec![
                SwitchSeq::ZERO,
                SwitchSeq::new(SwitchId(1), 1),
                SwitchSeq::new(SwitchId(1), 5),
                SwitchSeq::new(SwitchId(2), 0),
            ]
        );
    }
}
