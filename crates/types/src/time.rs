//! Virtual time.
//!
//! The simulator, the protocols' timers, and the metrics pipeline all speak
//! in these units. One tick is one **nanosecond** of virtual time. The live
//! runtime translates wall-clock time into the same representation so the
//! protocol state machines are oblivious to which driver runs them.

/// A point in (virtual) time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Instant(pub u64);

/// A span of (virtual) time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration(pub u64);

impl Instant {
    /// The simulation epoch.
    pub const ZERO: Instant = Instant(0);

    /// Nanoseconds since the epoch.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(n: u64) -> Duration {
        Duration(n)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Nanoseconds in this span.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds, as a float (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Convert to a `std::time::Duration` (used by the live driver).
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl std::fmt::Debug for Instant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Debug for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(1).nanos(), 1_000_000_000);
        assert_eq!(Duration::from_millis(2).nanos(), 2_000_000);
        assert_eq!(Duration::from_micros(3).nanos(), 3_000);
        assert_eq!(Duration::from_nanos(4).nanos(), 4);
    }

    #[test]
    fn arithmetic() {
        let t = Instant::ZERO + Duration::from_micros(5);
        assert_eq!(t.nanos(), 5_000);
        assert_eq!(t.since(Instant::ZERO), Duration::from_micros(5));
        // saturating behaviour
        assert_eq!(Instant::ZERO.since(t), Duration::ZERO);
        assert_eq!(
            Duration::from_micros(1) - Duration::from_micros(2),
            Duration::ZERO
        );
    }

    #[test]
    fn scaling() {
        assert_eq!(Duration::from_micros(2) * 3, Duration::from_micros(6));
        assert_eq!(Duration::from_micros(6) / 3, Duration::from_micros(2));
    }

    #[test]
    fn debug_formatting_picks_unit() {
        assert_eq!(format!("{:?}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{:?}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{:?}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{:?}", Duration::from_secs(12)), "12.000s");
    }
}
