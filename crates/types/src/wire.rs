//! Compact binary wire codec.
//!
//! The live (threaded) runtime serializes packets across its links with this
//! codec; the simulator passes packets by value and never touches it. The
//! format is little-endian, length-prefixed, and versionless (both ends are
//! always the same build — this is an intra-rack protocol, not a public one).
//!
//! Every type that crosses a link implements [`Wire`]. The codec is
//! deliberately hand-rolled: the Harmonia header is a fixed layout the
//! "switch" parses in its pipeline, and hand-rolling keeps the layout
//! explicit and dependency-free.

use std::marker::PhantomData;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::id::{ClientId, NodeId, ObjectId, ReplicaId, RequestId, SwitchId};
use crate::packet::{
    ClientReply, ClientRequest, ControlMsg, OpKind, Packet, PacketBody, ReadMode, WriteCompletion,
    WriteOutcome,
};
use crate::seq::SwitchSeq;
use crate::TypeError;

/// Upper bound on one encoded frame, length prefix included — and therefore
/// on every length-prefixed field inside it (keys, values, vectors).
///
/// One constant governs both sides of the wire: [`encode_frame`] and
/// [`encode_frame_into`] refuse to produce a larger frame (an error, never
/// silent truncation), and [`decode_frame`] rejects any declared length
/// beyond it before allocating, so untrusted bytes can never make a decoder
/// reserve unbounded memory. The value is the largest UDP/IPv4 payload
/// (65 535 − 8 − 20): a datagram in the `harmonia-net` transport carries one
/// or more back-to-back frames (see [`frames`]) up to this budget, so a
/// single frame bigger than it could never cross the real wire anyway.
pub const MAX_FRAME_BYTES: usize = 65_507;

/// A type that can be encoded to / decoded from the wire.
pub trait Wire: Sized {
    /// Append this value to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode one value from the front of `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError>;
}

/// Encode a full frame (length-prefixed) ready to write to a stream or pack
/// into one datagram. Fails with [`TypeError::OversizedField`] if the frame
/// would exceed [`MAX_FRAME_BYTES`] — the bound is enforced symmetrically
/// with [`decode_frame`], so a frame this side produces is always one the
/// other side accepts, and nothing is ever silently truncated.
pub fn encode_frame<T: Wire>(value: &T) -> Result<Bytes, TypeError> {
    let mut frame = BytesMut::with_capacity(64);
    encode_frame_into(value, &mut frame)?;
    Ok(frame.freeze())
}

/// Append one length-prefixed frame for `value` to `buf` — the zero-copy
/// sibling of [`encode_frame`], for callers (the coalescing UDP send path)
/// that pack several frames back-to-back into one pooled datagram buffer.
///
/// The length prefix is written as a placeholder first and patched once the
/// body length is known, so the value is encoded exactly once, straight into
/// `buf` — no intermediate body buffer, no copy. Returns the frame length
/// appended (prefix included). On [`TypeError::OversizedField`] the buffer is
/// rolled back to its original length, so a packer can refuse one oversized
/// frame without disturbing the frames already written before it.
pub fn encode_frame_into<T: Wire>(value: &T, buf: &mut BytesMut) -> Result<usize, TypeError> {
    let start = buf.len();
    buf.put_u32_le(0); // placeholder, patched below
    value.encode(buf);
    let body_len = buf.len() - (start + 4);
    if body_len > MAX_FRAME_BYTES - 4 {
        buf.truncate(start);
        return Err(TypeError::OversizedField {
            field: "frame",
            len: body_len + 4,
        });
    }
    if let Some(prefix) = buf.get_mut(start..start + 4) {
        prefix.copy_from_slice(&(body_len as u32).to_le_bytes());
    }
    Ok(body_len + 4)
}

/// Decode one frame produced by [`encode_frame`]. Returns the value and the
/// number of bytes consumed, or `Ok(None)` if the buffer does not yet hold a
/// complete frame. The value must consume the frame's declared body exactly:
/// declared-but-undecoded bytes are a [`TypeError::TrailingBytes`] error, so
/// a malformed peer cannot smuggle junk inside a valid length prefix.
pub fn decode_frame<T: Wire>(buf: &[u8]) -> Result<Option<(T, usize)>, TypeError> {
    let Some(len) = frame_body_len(buf.len(), buf)? else {
        return Ok(None);
    };
    // `frame_body_len` proved `buf.len() >= 4 + len`; the checked slice
    // keeps that proof local instead of trusting it at a panicking index.
    let Some(body) = buf.get(4..4 + len) else {
        return Ok(None);
    };
    let mut body = Bytes::copy_from_slice(body);
    finish_frame(T::decode(&mut body)?, &body, len)
}

/// Zero-copy variant of [`decode_frame`]: the same framing and strictness,
/// but the body is *sliced* out of `buf` instead of copied, so any
/// [`Bytes`]-typed payload fields in the decoded value alias the caller's
/// buffer. This is what lets the UDP receive path hand out key/value
/// payloads that point straight into a pooled datagram buffer — the buffer
/// stays pinned (unreclaimable by the pool) until the last payload slice is
/// dropped.
pub fn decode_frame_shared<T: Wire>(buf: &Bytes) -> Result<Option<(T, usize)>, TypeError> {
    let Some(len) = frame_body_len(buf.len(), buf)? else {
        return Ok(None);
    };
    // lint:allow(panic_path): `Bytes::slice` has no checked variant; the
    // range is proven in bounds by `frame_body_len` (avail >= 4 + len).
    let mut body = buf.slice(4..4 + len);
    finish_frame(T::decode(&mut body)?, &body, len)
}

/// Iterate every back-to-back frame in one datagram buffer — GRO on receive.
///
/// A coalesced datagram is zero or more [`encode_frame`]-format frames packed
/// end to end. Each `Ok` item is one decoded value whose `Bytes` payload
/// fields alias `buf` (the [`decode_frame_shared`] zero-copy contract). The
/// iterator ends cleanly (yields `None`) only when every byte of `buf` was
/// consumed by valid frames; a garbage or truncated tail yields exactly one
/// final `Err` — a cut-off trailing frame surfaces as
/// [`TypeError::Truncated`] — after which iteration stops. Frames decoded
/// *before* the bad tail have already been yielded, so a receiver can salvage
/// the valid prefix instead of discarding the whole datagram.
pub fn frames<T: Wire>(buf: &Bytes) -> FrameIter<'_, T> {
    FrameIter {
        buf,
        used: 0,
        done: false,
        _payload: PhantomData,
    }
}

/// Iterator state for [`frames`]. Fused: after the first `Err` (or the clean
/// end of the buffer) it yields `None` forever.
pub struct FrameIter<'a, T> {
    buf: &'a Bytes,
    used: usize,
    done: bool,
    _payload: PhantomData<fn() -> T>,
}

impl<T> FrameIter<'_, T> {
    /// Bytes consumed by the valid frames yielded so far.
    pub fn used(&self) -> usize {
        self.used
    }
}

impl<T: Wire> Iterator for FrameIter<'_, T> {
    type Item = Result<T, TypeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.used >= self.buf.len() {
            self.done = true;
            return None;
        }
        // lint:allow(panic_path): `Bytes::slice` has no checked variant;
        // `used` only grows by byte counts `decode_frame_shared` proved in
        // bounds, so `used <= buf.len()` holds on every iteration.
        let rest = self.buf.slice(self.used..self.buf.len());
        match decode_frame_shared::<T>(&rest) {
            Ok(Some((value, used))) => {
                self.used += used;
                Some(Ok(value))
            }
            // The datagram ends mid-frame: report how many bytes the
            // declared length still wanted (header permitting).
            Ok(None) => {
                self.done = true;
                let needed = match *rest.as_slice() {
                    [b0, b1, b2, b3, ..] => {
                        4 + u32::from_le_bytes([b0, b1, b2, b3]) as usize - rest.len()
                    }
                    _ => 4 - rest.len(),
                };
                Some(Err(TypeError::Truncated { needed }))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Shared header parse: `Ok(None)` while incomplete, the declared body
/// length once the full frame is present, oversize rejected up front.
fn frame_body_len(avail: usize, buf: &[u8]) -> Result<Option<usize>, TypeError> {
    if avail < 4 {
        return Ok(None);
    }
    let &[b0, b1, b2, b3, ..] = buf else {
        return Ok(None);
    };
    let len = u32::from_le_bytes([b0, b1, b2, b3]) as usize;
    // Overflow-proof form of `len + 4 > MAX_FRAME_BYTES`: a hostile prefix
    // can claim up to u32::MAX, which `len + 4` would wrap on 32-bit
    // targets, sneaking past the bound into a panicking slice index below.
    if len > MAX_FRAME_BYTES - 4 {
        return Err(TypeError::OversizedField {
            field: "frame",
            len,
        });
    }
    if avail < 4 + len {
        return Ok(None);
    }
    Ok(Some(len))
}

fn finish_frame<T>(value: T, rest: &Bytes, len: usize) -> Result<Option<(T, usize)>, TypeError> {
    if !rest.is_empty() {
        return Err(TypeError::TrailingBytes { len: rest.len() });
    }
    Ok(Some((value, 4 + len)))
}

fn need(buf: &Bytes, n: usize) -> Result<(), TypeError> {
    if buf.remaining() < n {
        Err(TypeError::Truncated {
            needed: n - buf.remaining(),
        })
    } else {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        need(buf, 1)?;
        Ok(buf.get_u8())
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        need(buf, 4)?;
        Ok(buf.get_u32_le())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le())
    }
}

impl Wire for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.extend_from_slice(self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_FRAME_BYTES {
            return Err(TypeError::OversizedField {
                field: "bytes",
                len,
            });
        }
        need(buf, len)?;
        Ok(buf.split_to(len))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            v => Err(TypeError::BadDiscriminant {
                field: "Option",
                value: u64::from(v),
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_FRAME_BYTES {
            return Err(TypeError::OversizedField { field: "vec", len });
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

macro_rules! wire_newtype_u32 {
    ($t:ty) => {
        impl Wire for $t {
            fn encode(&self, buf: &mut BytesMut) {
                self.0.encode(buf);
            }
            fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
                Ok(Self(u32::decode(buf)?))
            }
        }
    };
}

wire_newtype_u32!(ObjectId);
wire_newtype_u32!(SwitchId);
wire_newtype_u32!(ReplicaId);
wire_newtype_u32!(ClientId);

impl Wire for RequestId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(RequestId(u64::decode(buf)?))
    }
}

impl Wire for SwitchSeq {
    fn encode(&self, buf: &mut BytesMut) {
        self.switch_id.encode(buf);
        self.seq.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(SwitchSeq {
            switch_id: SwitchId::decode(buf)?,
            seq: u64::decode(buf)?,
        })
    }
}

impl Wire for NodeId {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            NodeId::Client(c) => {
                buf.put_u8(0);
                c.encode(buf);
            }
            NodeId::Replica(r) => {
                buf.put_u8(1);
                r.encode(buf);
            }
            NodeId::Switch(s) => {
                buf.put_u8(2);
                s.encode(buf);
            }
            NodeId::Controller => buf.put_u8(3),
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(NodeId::Client(ClientId::decode(buf)?)),
            1 => Ok(NodeId::Replica(ReplicaId::decode(buf)?)),
            2 => Ok(NodeId::Switch(SwitchId::decode(buf)?)),
            3 => Ok(NodeId::Controller),
            v => Err(TypeError::BadDiscriminant {
                field: "NodeId",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for OpKind {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            OpKind::Read => 0,
            OpKind::Write => 1,
        });
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(OpKind::Read),
            1 => Ok(OpKind::Write),
            v => Err(TypeError::BadDiscriminant {
                field: "OpKind",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for ReadMode {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ReadMode::Normal => buf.put_u8(0),
            ReadMode::FastPath { switch } => {
                buf.put_u8(1);
                switch.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(ReadMode::Normal),
            1 => Ok(ReadMode::FastPath {
                switch: SwitchId::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "ReadMode",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for WriteOutcome {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            WriteOutcome::Committed => 0,
            WriteOutcome::DroppedBySwitch => 1,
            WriteOutcome::Rejected => 2,
        });
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(WriteOutcome::Committed),
            1 => Ok(WriteOutcome::DroppedBySwitch),
            2 => Ok(WriteOutcome::Rejected),
            v => Err(TypeError::BadDiscriminant {
                field: "WriteOutcome",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for WriteCompletion {
    fn encode(&self, buf: &mut BytesMut) {
        self.obj.encode(buf);
        self.seq.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(WriteCompletion {
            obj: ObjectId::decode(buf)?,
            seq: SwitchSeq::decode(buf)?,
        })
    }
}

impl Wire for ClientRequest {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        self.request.encode(buf);
        self.op.encode(buf);
        self.obj.encode(buf);
        self.key.encode(buf);
        self.value.encode(buf);
        self.seq.encode(buf);
        self.last_committed.encode(buf);
        self.read_mode.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(ClientRequest {
            client: ClientId::decode(buf)?,
            request: RequestId::decode(buf)?,
            op: OpKind::decode(buf)?,
            obj: ObjectId::decode(buf)?,
            key: Bytes::decode(buf)?,
            value: Option::<Bytes>::decode(buf)?,
            seq: Option::<SwitchSeq>::decode(buf)?,
            last_committed: Option::<SwitchSeq>::decode(buf)?,
            read_mode: ReadMode::decode(buf)?,
        })
    }
}

impl Wire for ClientReply {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        self.from.encode(buf);
        self.request.encode(buf);
        self.obj.encode(buf);
        self.value.encode(buf);
        self.write_outcome.encode(buf);
        self.completion.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(ClientReply {
            client: ClientId::decode(buf)?,
            from: ReplicaId::decode(buf)?,
            request: RequestId::decode(buf)?,
            obj: ObjectId::decode(buf)?,
            value: Option::<Bytes>::decode(buf)?,
            write_outcome: Option::<WriteOutcome>::decode(buf)?,
            completion: Option::<WriteCompletion>::decode(buf)?,
        })
    }
}

impl Wire for ControlMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ControlMsg::AddReplica(r) => {
                buf.put_u8(0);
                r.encode(buf);
            }
            ControlMsg::RemoveReplica(r) => {
                buf.put_u8(1);
                r.encode(buf);
            }
            ControlMsg::SetReplicas(rs) => {
                buf.put_u8(2);
                rs.encode(buf);
            }
            ControlMsg::GateReplica(r) => {
                buf.put_u8(3);
                r.encode(buf);
            }
            ControlMsg::UngateReplica { replica, caught_up } => {
                buf.put_u8(4);
                replica.encode(buf);
                caught_up.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(ControlMsg::AddReplica(ReplicaId::decode(buf)?)),
            1 => Ok(ControlMsg::RemoveReplica(ReplicaId::decode(buf)?)),
            2 => Ok(ControlMsg::SetReplicas(Vec::<ReplicaId>::decode(buf)?)),
            3 => Ok(ControlMsg::GateReplica(ReplicaId::decode(buf)?)),
            4 => Ok(ControlMsg::UngateReplica {
                replica: ReplicaId::decode(buf)?,
                caught_up: SwitchSeq::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "ControlMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl<T: Wire> Wire for PacketBody<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PacketBody::Request(r) => {
                buf.put_u8(0);
                r.encode(buf);
            }
            PacketBody::Reply(r) => {
                buf.put_u8(1);
                r.encode(buf);
            }
            PacketBody::Completion(c) => {
                buf.put_u8(2);
                c.encode(buf);
            }
            PacketBody::Protocol(p) => {
                buf.put_u8(3);
                p.encode(buf);
            }
            PacketBody::Control(c) => {
                buf.put_u8(4);
                c.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(PacketBody::Request(ClientRequest::decode(buf)?)),
            1 => Ok(PacketBody::Reply(ClientReply::decode(buf)?)),
            2 => Ok(PacketBody::Completion(WriteCompletion::decode(buf)?)),
            3 => Ok(PacketBody::Protocol(T::decode(buf)?)),
            4 => Ok(PacketBody::Control(ControlMsg::decode(buf)?)),
            v => Err(TypeError::BadDiscriminant {
                field: "PacketBody",
                value: u64::from(v),
            }),
        }
    }
}

impl<T: Wire> Wire for Packet<T> {
    fn encode(&self, buf: &mut BytesMut) {
        self.src.encode(buf);
        self.dst.encode(buf);
        self.body.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(Packet {
            src: NodeId::decode(buf)?,
            dst: NodeId::decode(buf)?,
            body: PacketBody::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let frame = encode_frame(v).unwrap();
        let (decoded, used) = decode_frame::<T>(&frame).unwrap().unwrap();
        assert_eq!(&decoded, v);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&Bytes::from_static(b"hello"));
        roundtrip(&Some(42u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&vec![1u32, 2, 3]);
    }

    #[test]
    fn request_roundtrip() {
        let mut r = ClientRequest::write(ClientId(9), RequestId(77), &b"key"[..], &b"val"[..]);
        r.seq = Some(SwitchSeq::new(SwitchId(2), 1234));
        r.last_committed = Some(SwitchSeq::new(SwitchId(2), 1200));
        r.read_mode = ReadMode::FastPath {
            switch: SwitchId(2),
        };
        roundtrip(&r);
    }

    #[test]
    fn reply_roundtrip() {
        let r = ClientReply {
            client: ClientId(1),
            from: ReplicaId(4),
            request: RequestId(2),
            obj: ObjectId(3),
            value: Some(Bytes::from_static(b"v")),
            write_outcome: Some(WriteOutcome::Committed),
            completion: Some(WriteCompletion {
                obj: ObjectId(3),
                seq: SwitchSeq::new(SwitchId(1), 5),
            }),
        };
        roundtrip(&r);
    }

    #[test]
    fn packet_roundtrip_all_bodies() {
        type P = Packet<u64>;
        let bodies: Vec<PacketBody<u64>> = vec![
            PacketBody::Request(ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..])),
            PacketBody::Completion(WriteCompletion {
                obj: ObjectId(7),
                seq: SwitchSeq::new(SwitchId(1), 9),
            }),
            PacketBody::Protocol(0xdead_beef),
            PacketBody::Control(ControlMsg::SetReplicas(vec![ReplicaId(0), ReplicaId(1)])),
            PacketBody::Control(ControlMsg::GateReplica(ReplicaId(2))),
            PacketBody::Control(ControlMsg::UngateReplica {
                replica: ReplicaId(2),
                caught_up: SwitchSeq::new(SwitchId(1), 41),
            }),
        ];
        for body in bodies {
            let p: P = Packet::new(
                NodeId::Client(ClientId(1)),
                NodeId::Switch(SwitchId(1)),
                body,
            );
            roundtrip(&p);
        }
    }

    #[test]
    fn partial_frame_returns_none() {
        let frame = encode_frame(&u64::MAX).unwrap();
        for cut in 0..frame.len() {
            assert!(decode_frame::<u64>(&frame[..cut]).unwrap().is_none());
        }
    }

    #[test]
    fn encode_refuses_oversized_frames() {
        // A value field larger than the frame bound must be an encode-time
        // error, never a silently truncated frame the peer cannot parse.
        let huge = Bytes::from(vec![0u8; MAX_FRAME_BYTES]);
        assert!(matches!(
            encode_frame(&huge),
            Err(TypeError::OversizedField { field: "frame", .. })
        ));
        // Just under the bound round-trips: frame = 4 (prefix) + 4 (field
        // length) + payload.
        let fits = Bytes::from(vec![7u8; MAX_FRAME_BYTES - 8]);
        let frame = encode_frame(&fits).unwrap();
        assert_eq!(frame.len(), MAX_FRAME_BYTES);
        let (decoded, used) = decode_frame::<Bytes>(&frame).unwrap().unwrap();
        assert_eq!(decoded, fits);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn shared_decode_matches_and_aliases() {
        let mut r = ClientRequest::write(ClientId(3), RequestId(11), &b"a-key"[..], &b"a-val"[..]);
        r.seq = Some(SwitchSeq::new(SwitchId(1), 7));
        let frame = encode_frame(&r).unwrap();
        let (decoded, used) = decode_frame_shared::<ClientRequest>(&frame)
            .unwrap()
            .unwrap();
        assert_eq!(decoded, r);
        assert_eq!(used, frame.len());
        // Zero-copy: the decoded key points into the frame's own storage.
        let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        let key_ptr = decoded.key.as_ptr() as usize;
        assert!(
            frame_range.contains(&key_ptr),
            "key was copied out of the frame buffer"
        );
    }

    #[test]
    fn declared_body_must_be_fully_consumed() {
        // A frame whose length prefix covers the value *plus* junk decodes
        // the value fine but must still be rejected: the junk is inside the
        // declared body, invisible to the transport's whole-datagram check.
        let clean = encode_frame(&7u32).unwrap();
        let mut padded = BytesMut::new();
        padded.put_u32_le((clean.len() - 4 + 3) as u32);
        padded.extend_from_slice(&clean[4..]);
        padded.extend_from_slice(&[0xee, 0xee, 0xee]);
        let padded = padded.freeze();
        assert_eq!(
            decode_frame::<u32>(&padded),
            Err(TypeError::TrailingBytes { len: 3 })
        );
        assert_eq!(
            decode_frame_shared::<u32>(&padded),
            Err(TypeError::TrailingBytes { len: 3 })
        );
    }

    #[test]
    fn encode_into_matches_encode_frame_and_rolls_back() {
        let r = ClientRequest::write(ClientId(9), RequestId(77), &b"key"[..], &b"val"[..]);
        let standalone = encode_frame(&r).unwrap();
        // Appending after existing content produces the same frame bytes.
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"prior");
        let n = encode_frame_into(&r, &mut buf).unwrap();
        assert_eq!(n, standalone.len());
        assert_eq!(&buf[5..], &standalone[..]);
        // An oversized value rolls the buffer back to exactly where it was.
        let huge = Bytes::from(vec![0u8; MAX_FRAME_BYTES]);
        let before = buf.len();
        assert!(matches!(
            encode_frame_into(&huge, &mut buf),
            Err(TypeError::OversizedField { field: "frame", .. })
        ));
        assert_eq!(buf.len(), before, "failed encode must not disturb buf");
        assert_eq!(&buf[5..], &standalone[..]);
    }

    #[test]
    fn frames_iterates_coalesced_datagrams() {
        let values = [1u64, u64::MAX, 42, 7];
        let mut buf = BytesMut::new();
        for v in &values {
            encode_frame_into(v, &mut buf).unwrap();
        }
        let datagram = buf.freeze();
        let decoded: Vec<u64> = frames::<u64>(&datagram).map(|r| r.unwrap()).collect();
        assert_eq!(decoded, values);
        // An empty datagram iterates cleanly to nothing.
        assert_eq!(frames::<u64>(&Bytes::new()).count(), 0);
    }

    #[test]
    fn frames_salvages_valid_prefix_before_bad_tail() {
        let mut buf = BytesMut::new();
        encode_frame_into(&3u32, &mut buf).unwrap();
        encode_frame_into(&4u32, &mut buf).unwrap();
        buf.extend_from_slice(&[0xde, 0xad]); // garbage tail: cut-off header
        let datagram = buf.freeze();
        let mut it = frames::<u32>(&datagram);
        assert_eq!(it.next(), Some(Ok(3)));
        assert_eq!(it.next(), Some(Ok(4)));
        assert_eq!(it.next(), Some(Err(TypeError::Truncated { needed: 2 })));
        assert_eq!(it.next(), None, "iterator must fuse after an error");
        assert_eq!(it.used(), 16, "used counts only the valid frames");
    }

    #[test]
    fn frames_never_panics_on_any_cut() {
        // Truncate a two-frame datagram at every byte boundary: each cut
        // yields the decodable prefix then at most one error, never a panic.
        let mut buf = BytesMut::new();
        encode_frame_into(&0xaabbu64, &mut buf).unwrap();
        encode_frame_into(&0xccddu64, &mut buf).unwrap();
        let full = buf.freeze();
        for cut in 0..=full.len() {
            let datagram = full.slice(0..cut);
            let mut ok = 0usize;
            let mut errs = 0usize;
            for item in frames::<u64>(&datagram) {
                match item {
                    Ok(_) => ok += 1,
                    Err(_) => errs += 1,
                }
            }
            let whole_frames = [0, 12, 24].iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(ok, whole_frames, "cut={cut}");
            assert_eq!(errs, usize::from(cut != 0 && cut != 12 && cut != 24));
        }
    }

    #[test]
    fn bad_discriminant_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(9); // not a valid OpKind
        let mut b = buf.freeze();
        assert!(matches!(
            OpKind::decode(&mut b),
            Err(TypeError::BadDiscriminant {
                field: "OpKind",
                ..
            })
        ));
    }

    #[test]
    fn oversized_field_rejected() {
        let mut frame = BytesMut::new();
        frame.put_u32_le(u32::MAX); // absurd frame length
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(TypeError::OversizedField { .. })
        ));
    }
}
