//! Operation histories.

use std::collections::BTreeMap;

use bytes::Bytes;

/// What an operation did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// A (blind) write of the value.
    Write(Bytes),
    /// A read observing the value (`None` = key absent).
    Read(Option<Bytes>),
}

/// One completed operation, with its real-time window.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpRecord {
    /// Issuing client (for diagnostics only).
    pub client: u32,
    /// Key operated on.
    pub key: Bytes,
    /// Invocation timestamp (any monotone clock; virtual time in the sim).
    pub invoke: u64,
    /// Completion timestamp; must be ≥ `invoke`.
    pub complete: u64,
    /// The operation.
    pub action: Action,
}

impl OpRecord {
    /// Convenience write record.
    pub fn write(
        client: u32,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
        invoke: u64,
        complete: u64,
    ) -> Self {
        OpRecord {
            client,
            key: key.into(),
            invoke,
            complete,
            action: Action::Write(value.into()),
        }
    }

    /// Convenience read record.
    pub fn read(
        client: u32,
        key: impl Into<Bytes>,
        result: Option<Bytes>,
        invoke: u64,
        complete: u64,
    ) -> Self {
        OpRecord {
            client,
            key: key.into(),
            invoke,
            complete,
            action: Action::Read(result),
        }
    }
}

/// Split a history into independent per-key histories (registers are
/// independent objects; linearizability composes across them). Key-ordered
/// so the per-key checks run in the same order on every run.
pub fn partition_by_key(records: Vec<OpRecord>) -> BTreeMap<Bytes, Vec<OpRecord>> {
    let mut map: BTreeMap<Bytes, Vec<OpRecord>> = BTreeMap::new();
    for r in records {
        map.entry(r.key.clone()).or_default().push(r);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_groups_by_key() {
        let records = vec![
            OpRecord::write(1, "a", "1", 0, 1),
            OpRecord::read(2, "b", None, 0, 2),
            OpRecord::read(1, "a", Some(Bytes::from_static(b"1")), 2, 3),
        ];
        let parts = partition_by_key(records);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[&Bytes::from_static(b"a")].len(), 2);
        assert_eq!(parts[&Bytes::from_static(b"b")].len(), 1);
    }
}
