//! Correctness tooling.
//!
//! Two independent lines of defence, mirroring the paper's appendices:
//!
//! * [`linearizability`] — a Wing–Gong checker for recorded histories
//!   (per-key register semantics). Integration tests run real protocol
//!   stacks under packet loss/reordering/duplication and feed the recorded
//!   client histories through this checker.
//! * [`model`] — an executable model checker that mirrors the TLA+
//!   specification of Appendix B action for action (`SendWrite`,
//!   `HandleWrite`, `ProcessWriteCompletion`, `CommitWrite`, `SendRead`,
//!   `HandleProtocolRead`, `HandleHarmoniaRead`, `SwitchFailover`), and
//!   exhaustively explores small configurations checking the spec's
//!   `Linearizability` invariant — for both read-ahead and read-behind
//!   protocol classes, across switch failovers. A mutation knob removes the
//!   §7 read guard to demonstrate the checker catches the resulting
//!   anomalies.

#![forbid(unsafe_code)]

pub mod history;
pub mod linearizability;
pub mod model;

pub use history::{Action, OpRecord};
pub use linearizability::{check_history, check_key_history, Violation};
pub use model::{ModelConfig, ModelOutcome, SpecModel};
