//! Wing–Gong linearizability checking for register histories.
//!
//! An operation may be linearized next iff no *other* pending operation
//! completed before it was invoked (real-time order must be respected).
//! The search walks all admissible linearization orders, pruning with a
//! memo over `(linearized-set, last-write)` states — the classic WG
//! algorithm specialized to read/write registers, which is exactly the
//! object model of the paper (GET/SET on Redis keys).

use std::collections::HashSet;

use bytes::Bytes;

use crate::history::{partition_by_key, Action, OpRecord};

/// Why a history is not linearizable (or not checkable).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// No legal linearization order exists for this key's history.
    NotLinearizable {
        /// The offending key.
        key: Bytes,
    },
    /// A per-key history exceeded the checker's 64-operation bitmask bound.
    TooLarge {
        /// The offending key.
        key: Bytes,
        /// Number of operations recorded for it.
        ops: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotLinearizable { key } => {
                write!(f, "history for key {key:?} is not linearizable")
            }
            Violation::TooLarge { key, ops } => {
                write!(
                    f,
                    "history for key {key:?} has {ops} ops (checker limit 64)"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Check one key's history (all records must share the key).
pub fn check_key_history(ops: &[OpRecord]) -> Result<(), Violation> {
    if ops.is_empty() {
        return Ok(());
    }
    let key = ops[0].key.clone();
    if ops.len() > 64 {
        return Err(Violation::TooLarge {
            key,
            ops: ops.len(),
        });
    }
    if search(ops, 0, usize::MAX, &mut HashSet::new()) {
        Ok(())
    } else {
        Err(Violation::NotLinearizable { key })
    }
}

/// Check a full multi-key history (registers compose).
pub fn check_history(records: Vec<OpRecord>) -> Result<(), Violation> {
    for (_, ops) in partition_by_key(records) {
        check_key_history(&ops)?;
    }
    Ok(())
}

/// DFS over linearization orders. `done` is the bitmask of linearized ops;
/// `last_write` indexes the write whose value the register currently holds
/// (`usize::MAX` = initial, absent). Returns true if a full order exists.
fn search(
    ops: &[OpRecord],
    done: u64,
    last_write: usize,
    memo: &mut HashSet<(u64, usize)>,
) -> bool {
    if done.count_ones() as usize == ops.len() {
        return true;
    }
    if !memo.insert((done, last_write)) {
        return false;
    }
    // The earliest completion among pending ops: anything invoked after it
    // cannot be linearized next.
    let min_complete = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, o)| o.complete)
        .min()
        .expect("pending ops exist");
    for (i, op) in ops.iter().enumerate() {
        if done & (1 << i) != 0 || op.invoke > min_complete {
            continue;
        }
        let next_write = match &op.action {
            Action::Write(_) => i,
            Action::Read(observed) => {
                let current = if last_write == usize::MAX {
                    None
                } else {
                    match &ops[last_write].action {
                        Action::Write(v) => Some(v),
                        Action::Read(_) => unreachable!("last_write indexes a write"),
                    }
                };
                if observed.as_ref() != current {
                    continue; // this read cannot go here
                }
                last_write
            }
        };
        if search(ops, done | (1 << i), next_write, memo) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn empty_and_single_op_histories_pass() {
        assert!(check_key_history(&[]).is_ok());
        assert!(check_key_history(&[OpRecord::read(1, "k", None, 0, 1)]).is_ok());
        assert!(check_key_history(&[OpRecord::write(1, "k", "v", 0, 1)]).is_ok());
    }

    #[test]
    fn sequential_write_then_read_passes() {
        let h = vec![
            OpRecord::write(1, "k", "v1", 0, 10),
            OpRecord::read(2, "k", Some(b("v1")), 20, 30),
        ];
        assert!(check_key_history(&h).is_ok());
    }

    #[test]
    fn stale_read_after_completed_write_fails() {
        // Write finished at 10; a read invoked at 20 returning the initial
        // value violates visibility (P1).
        let h = vec![
            OpRecord::write(1, "k", "v1", 0, 10),
            OpRecord::read(2, "k", None, 20, 30),
        ];
        assert!(matches!(
            check_key_history(&h),
            Err(Violation::NotLinearizable { .. })
        ));
    }

    #[test]
    fn read_ahead_of_uncommitted_write_fails() {
        // The write completes at 100, but a read that both started and
        // finished before any overlap window... actually overlapping is
        // fine; this one observes a value that is NEVER written.
        let h = vec![
            OpRecord::write(1, "k", "v1", 0, 100),
            OpRecord::read(2, "k", Some(b("ghost")), 10, 20),
        ];
        assert!(check_key_history(&h).is_err());
    }

    #[test]
    fn concurrent_read_may_see_either_side_of_a_write() {
        for observed in [None, Some(b("v1"))] {
            let h = vec![
                OpRecord::write(1, "k", "v1", 0, 100),
                OpRecord::read(2, "k", observed, 10, 20),
            ];
            assert!(check_key_history(&h).is_ok());
        }
    }

    #[test]
    fn oscillating_reads_fail() {
        // The paper's §3 anomaly: a value appearing, disappearing, and
        // reappearing depending on which replica answered.
        let h = vec![
            OpRecord::write(1, "k", "new", 0, 10),
            OpRecord::read(2, "k", Some(b("new")), 20, 25),
            OpRecord::read(2, "k", None, 30, 35),
        ];
        assert!(check_key_history(&h).is_err());
    }

    #[test]
    fn two_writers_and_reader_interleave_legally() {
        let h = vec![
            OpRecord::write(1, "k", "a", 0, 50),
            OpRecord::write(2, "k", "b", 10, 60),
            OpRecord::read(3, "k", Some(b("a")), 70, 80),
        ];
        // Legal: b linearizes before a.
        assert!(check_key_history(&h).is_ok());
    }

    #[test]
    fn read_ordering_between_two_readers_is_enforced() {
        // r1 sees the new value and completes before r2 starts; r2 then
        // seeing the old value is the read-behind anomaly.
        let h = vec![
            OpRecord::write(1, "k", "old", 0, 5),
            OpRecord::write(1, "k", "new", 10, 100),
            OpRecord::read(2, "k", Some(b("new")), 20, 30),
            OpRecord::read(3, "k", Some(b("old")), 40, 50),
        ];
        assert!(check_key_history(&h).is_err());
        // Swap the observation order: fine.
        let h2 = vec![
            OpRecord::write(1, "k", "old", 0, 5),
            OpRecord::write(1, "k", "new", 10, 100),
            OpRecord::read(2, "k", Some(b("old")), 20, 30),
            OpRecord::read(3, "k", Some(b("new")), 40, 50),
        ];
        assert!(check_key_history(&h2).is_ok());
    }

    #[test]
    fn multi_key_histories_compose() {
        let records = vec![
            OpRecord::write(1, "a", "1", 0, 10),
            OpRecord::write(1, "b", "2", 20, 30),
            OpRecord::read(2, "a", Some(b("1")), 40, 50),
            OpRecord::read(2, "b", Some(b("2")), 40, 50),
        ];
        assert!(check_history(records).is_ok());
    }

    #[test]
    fn violation_on_one_key_is_found_among_many() {
        let mut records = vec![];
        for i in 0..10 {
            let key = format!("k{i}");
            records.push(OpRecord::write(1, key.clone(), "v", i * 100, i * 100 + 10));
            records.push(OpRecord::read(
                2,
                key,
                Some(b("v")),
                i * 100 + 20,
                i * 100 + 30,
            ));
        }
        // Poison one key.
        records.push(OpRecord::read(3, "k5", None, 2000, 2010));
        assert!(check_history(records).is_err());
    }

    #[test]
    fn oversized_history_is_rejected_not_ignored() {
        let h: Vec<OpRecord> = (0..65)
            .map(|i| OpRecord::write(1, "k", "v", i * 10, i * 10 + 5))
            .collect();
        assert!(matches!(
            check_key_history(&h),
            Err(Violation::TooLarge { ops: 65, .. })
        ));
    }

    #[test]
    fn deep_concurrent_history_checks_quickly() {
        // 20 fully-overlapping writes + a read: stresses the memo.
        let mut h: Vec<OpRecord> = (0..20)
            .map(|i| OpRecord::write(i, "k", format!("v{i}"), 0, 1000))
            .collect();
        h.push(OpRecord::read(99, "k", Some(b("v7")), 2000, 2001));
        assert!(check_key_history(&h).is_ok());
    }
}
