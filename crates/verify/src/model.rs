//! Executable model checker mirroring the paper's TLA+ specification
//! (Appendix B) action for action.
//!
//! The spec models: per-switch state (sequence counter, dirty set,
//! last-committed point), an active-switch pointer advanced by
//! `SwitchFailover`, a shared replicated log (`HandleWrite` appends in
//! sequence-number order), per-replica commit points, and a message *set*
//! (messages are never consumed — re-handling models duplication and delay).
//! Reads carry a `ghost` field recording the latest write any response had
//! already returned for that item, which lets the `Linearizability`
//! invariant be stated per response:
//!
//! > every `ReadResponse` returns a write ≥ the ghost, and that write is in
//! > the committed log (or bottom).
//!
//! Two deliberate, documented deviations from the raw TLA+ text:
//! * `HandleWrite` appends on strict `>` rather than `≥` — the spec's `≥`
//!   admits unbounded duplicate appends of the same write (infinite state
//!   space); a duplicate append is observationally equivalent because every
//!   spec function consumes `Range(log)`.
//! * exploration is bounded by configurable counters (writes per switch,
//!   reads, responses) — the standard TLC state-constraint technique.
//!
//! A mutation knob (`guard_enabled = false`) removes the §7 read guard from
//! `HandleHarmoniaRead`; the checker then *finds* the read-ahead /
//! read-behind anomalies of §3, which is the evidence that the invariant
//! checking has teeth.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// A write: `(switch, seq)` ordered lexicographically, tagged with its item.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct W {
    /// Issuing switch (0 = bottom).
    pub switch: u8,
    /// Sequence within the switch.
    pub seq: u8,
    /// Data item written (0 for bottom).
    pub item: u8,
}

/// The TLA+ `BottomWrite`.
pub const BOTTOM: W = W {
    switch: 0,
    seq: 0,
    item: 0,
};

/// `GTE(w1, w2)` from the spec: lexicographic on `(switch, seq)`.
fn gte(a: W, b: W) -> bool {
    (a.switch, a.seq) >= (b.switch, b.seq)
}

fn maxw(a: W, b: W) -> W {
    if gte(a, b) {
        a
    } else {
        b
    }
}

/// Messages (a set; never consumed).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum SpecMsg {
    Write(W),
    ProtocolRead {
        item: u8,
        ghost: W,
    },
    HarmoniaRead {
        item: u8,
        switch: u8,
        lc: W,
        ghost: W,
    },
    ReadResponse {
        write: W,
        ghost: W,
    },
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct SwitchState {
    seq: u8,
    dirty: BTreeMap<u8, u8>,
    last_committed: W,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct SpecState {
    switches: Vec<SwitchState>,
    active: u8,
    log: Vec<W>,
    commit_points: Vec<u8>,
    msgs: BTreeSet<SpecMsg>,
    reads_sent: u8,
}

/// Model parameters (the TLA+ CONSTANTS plus exploration bounds).
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Number of data items.
    pub items: u8,
    /// Number of replicas.
    pub replicas: usize,
    /// Number of switches (failover advances through them).
    pub switches: u8,
    /// `isReadBehind` from the spec (VR/NOPaxos true; PB/chain false).
    pub read_behind: bool,
    /// Writes each switch may issue.
    pub max_writes_per_switch: u8,
    /// Total reads issued across switches.
    pub max_reads: u8,
    /// Responses materialized (state constraint).
    pub max_responses: usize,
    /// Exploration cap.
    pub max_states: usize,
    /// Mutation knob: false removes the §7 read guard.
    pub guard_enabled: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            items: 2,
            replicas: 2,
            switches: 2,
            read_behind: false,
            max_writes_per_switch: 2,
            max_reads: 2,
            max_responses: 2,
            max_states: 2_000_000,
            guard_enabled: true,
        }
    }
}

/// Result of a model run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelOutcome {
    /// The full (bounded) state space satisfies the invariant.
    Verified {
        /// Distinct states explored.
        states: usize,
    },
    /// A state violating `Linearizability` was reached.
    ViolationFound {
        /// Debug rendering of the bad state.
        state: String,
        /// The offending response, rendered.
        response: String,
    },
    /// The cap was hit before exhaustion (no violation seen).
    Truncated {
        /// Distinct states explored before stopping.
        states: usize,
    },
}

/// Breadth-first explorer of the specification.
pub struct SpecModel {
    cfg: ModelConfig,
}

impl SpecModel {
    /// Build a model for `cfg`.
    pub fn new(cfg: ModelConfig) -> Self {
        SpecModel { cfg }
    }

    fn initial(&self) -> SpecState {
        SpecState {
            switches: (0..self.cfg.switches)
                .map(|_| SwitchState {
                    seq: 0,
                    dirty: BTreeMap::new(),
                    last_committed: BOTTOM,
                })
                .collect(),
            active: 1,
            log: Vec::new(),
            commit_points: vec![0; self.cfg.replicas],
            msgs: BTreeSet::new(),
            reads_sent: 0,
        }
    }

    /// `CommittedLog` from the spec.
    fn committed_log<'a>(&self, s: &'a SpecState) -> &'a [W] {
        if self.cfg.read_behind {
            &s.log
        } else {
            let min = s.commit_points.iter().copied().min().unwrap_or(0) as usize;
            &s.log[..min]
        }
    }

    fn max_committed_write_for_in(item: u8, log: &[W]) -> W {
        log.iter()
            .copied()
            .filter(|w| w.item == item)
            .fold(BOTTOM, maxw)
    }

    fn max_committed_write(&self, s: &SpecState) -> W {
        self.committed_log(s).iter().copied().fold(BOTTOM, maxw)
    }

    fn responses(s: &SpecState) -> usize {
        s.msgs
            .iter()
            .filter(|m| matches!(m, SpecMsg::ReadResponse { .. }))
            .count()
    }

    /// The spec's `Linearizability` invariant; returns an offending
    /// response if violated.
    fn invariant_violation(&self, s: &SpecState) -> Option<SpecMsg> {
        let committed = self.committed_log(s);
        for m in &s.msgs {
            if let SpecMsg::ReadResponse { write, ghost } = m {
                let fresh_enough = gte(*write, *ghost);
                let committed_ok = *write == BOTTOM || committed.contains(write);
                if !fresh_enough || !committed_ok {
                    return Some(m.clone());
                }
            }
        }
        None
    }

    fn successors(&self, s: &SpecState) -> Vec<SpecState> {
        let mut next = Vec::new();

        // SendWrite(s, d): only activated switches send writes.
        for sw in 1..=self.cfg.switches {
            if sw > s.active {
                continue;
            }
            let st = &s.switches[(sw - 1) as usize];
            if st.seq >= self.cfg.max_writes_per_switch {
                continue;
            }
            for d in 0..self.cfg.items {
                let mut n = s.clone();
                let nst = &mut n.switches[(sw - 1) as usize];
                nst.seq += 1;
                let seq = nst.seq;
                nst.dirty.insert(d, seq);
                n.msgs.insert(SpecMsg::Write(W {
                    switch: sw,
                    seq,
                    item: d,
                }));
                next.push(n);
            }
        }

        // HandleWrite(w): append in order (strict — see module docs).
        for m in &s.msgs {
            let SpecMsg::Write(w) = m else { continue };
            let ok = match s.log.last() {
                None => true,
                Some(last) => (w.switch, w.seq) > (last.switch, last.seq),
            };
            if ok {
                let mut n = s.clone();
                n.log.push(*w);
                next.push(n);
            }
        }

        // ProcessWriteCompletion(w): any committed write's completion may
        // reach its issuing switch.
        for w in s.log.iter().copied().collect::<BTreeSet<_>>() {
            if !gte(self.max_committed_write(s), w) {
                continue;
            }
            let mut n = s.clone();
            let st = &mut n.switches[(w.switch - 1) as usize];
            st.dirty.retain(|_, seq| *seq > w.seq);
            st.last_committed = maxw(st.last_committed, w);
            if n != *s {
                next.push(n);
            }
        }

        // CommitWrite(r): a replica locally executes the next log entry.
        for r in 0..self.cfg.replicas {
            if (s.commit_points[r] as usize) < s.log.len() {
                let mut n = s.clone();
                n.commit_points[r] += 1;
                next.push(n);
            }
        }

        // SendRead(s, d): ANY switch may still emit reads (stale switches
        // model in-flight traffic from deposed incarnations).
        if s.reads_sent < self.cfg.max_reads {
            for sw in 1..=self.cfg.switches {
                let st = &s.switches[(sw - 1) as usize];
                for d in 0..self.cfg.items {
                    let returned = s.msgs.iter().filter_map(|m| match m {
                        SpecMsg::ReadResponse { write, .. }
                            if *write != BOTTOM && write.item == d =>
                        {
                            Some(*write)
                        }
                        _ => None,
                    });
                    let ghost = returned.fold(
                        Self::max_committed_write_for_in(d, self.committed_log(s)),
                        maxw,
                    );
                    let fast = !st.dirty.contains_key(&d) && st.last_committed != BOTTOM;
                    let mut n = s.clone();
                    n.reads_sent += 1;
                    if fast {
                        n.msgs.insert(SpecMsg::HarmoniaRead {
                            item: d,
                            switch: sw,
                            lc: st.last_committed,
                            ghost,
                        });
                    } else {
                        n.msgs.insert(SpecMsg::ProtocolRead { item: d, ghost });
                    }
                    next.push(n);
                }
            }
        }

        // HandleProtocolRead(m): served from the committed log.
        if Self::responses(s) < self.cfg.max_responses {
            for m in &s.msgs {
                let SpecMsg::ProtocolRead { item, ghost } = m else {
                    continue;
                };
                let mut n = s.clone();
                n.msgs.insert(SpecMsg::ReadResponse {
                    write: Self::max_committed_write_for_in(*item, self.committed_log(s)),
                    ghost: *ghost,
                });
                if n != *s {
                    next.push(n);
                }
            }

            // HandleHarmoniaRead(r, m): single-replica read with the §7
            // guard. Only the active switch's reads are honoured.
            for m in &s.msgs {
                let SpecMsg::HarmoniaRead {
                    item,
                    switch,
                    lc,
                    ghost,
                } = m
                else {
                    continue;
                };
                if *switch != s.active {
                    continue;
                }
                for r in 0..self.cfg.replicas {
                    let cp = s.commit_points[r] as usize;
                    let w = Self::max_committed_write_for_in(*item, &s.log[..cp]);
                    let guard = if self.cfg.read_behind {
                        // Replica must be at least as current as the stamp.
                        let last_local = if cp > 0 { s.log[cp - 1] } else { BOTTOM };
                        gte(last_local, *lc)
                    } else {
                        // Read-ahead: the stamp must cover the applied write.
                        gte(*lc, w)
                    };
                    if self.cfg.guard_enabled && !guard {
                        continue;
                    }
                    let mut n = s.clone();
                    n.msgs.insert(SpecMsg::ReadResponse {
                        write: w,
                        ghost: *ghost,
                    });
                    if n != *s {
                        next.push(n);
                    }
                }
            }
        }

        // SwitchFailover.
        if s.active < self.cfg.switches {
            let mut n = s.clone();
            n.active += 1;
            next.push(n);
        }

        next
    }

    /// Explore the bounded state space.
    pub fn run(&self) -> ModelOutcome {
        let init = self.initial();
        if let Some(resp) = self.invariant_violation(&init) {
            return ModelOutcome::ViolationFound {
                state: format!("{init:?}"),
                response: format!("{resp:?}"),
            };
        }
        let mut seen: HashSet<SpecState> = HashSet::new();
        let mut queue: VecDeque<SpecState> = VecDeque::new();
        seen.insert(init.clone());
        queue.push_back(init);
        while let Some(state) = queue.pop_front() {
            for n in self.successors(&state) {
                if seen.contains(&n) {
                    continue;
                }
                if let Some(resp) = self.invariant_violation(&n) {
                    return ModelOutcome::ViolationFound {
                        state: format!("{n:?}"),
                        response: format!("{resp:?}"),
                    };
                }
                if seen.len() >= self.cfg.max_states {
                    return ModelOutcome::Truncated { states: seen.len() };
                }
                seen.insert(n.clone());
                queue.push_back(n);
            }
        }
        ModelOutcome::Verified { states: seen.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(read_behind: bool, guard: bool) -> ModelConfig {
        ModelConfig {
            items: 2,
            replicas: 2,
            switches: 2,
            read_behind,
            max_writes_per_switch: 1,
            max_reads: 2,
            max_responses: 2,
            max_states: 500_000,
            guard_enabled: guard,
        }
    }

    #[test]
    fn read_ahead_spec_verifies() {
        let outcome = SpecModel::new(small(false, true)).run();
        let ModelOutcome::Verified { states } = outcome else {
            panic!("expected verification, got {outcome:?}");
        };
        assert!(states > 1000, "only {states} states — bounds too tight?");
    }

    #[test]
    fn read_behind_spec_verifies() {
        let outcome = SpecModel::new(small(true, true)).run();
        let ModelOutcome::Verified { states } = outcome else {
            panic!("expected verification, got {outcome:?}");
        };
        assert!(states > 1000);
    }

    #[test]
    fn removing_the_guard_breaks_read_ahead_protocols() {
        // Without the §7.2 guard a replica hands out applied-but-uncommitted
        // writes: the invariant's committed-membership clause must trip.
        // The anomaly needs two writes from one switch: the first completes
        // (enabling the fast path), a read is stamped, then a second write
        // is applied at one replica before the delayed read arrives.
        let cfg = ModelConfig {
            items: 1,
            replicas: 2,
            switches: 1,
            read_behind: false,
            max_writes_per_switch: 2,
            max_reads: 1,
            max_responses: 1,
            max_states: 500_000,
            guard_enabled: false,
        };
        let outcome = SpecModel::new(cfg).run();
        assert!(
            matches!(outcome, ModelOutcome::ViolationFound { .. }),
            "mutation survived: {outcome:?}"
        );
    }

    #[test]
    fn read_ahead_spec_with_two_writes_verifies() {
        // Same configuration as the mutation test, guard restored: the
        // §7.2 guard is exactly what closes the anomaly.
        let cfg = ModelConfig {
            items: 1,
            replicas: 2,
            switches: 1,
            read_behind: false,
            max_writes_per_switch: 2,
            max_reads: 1,
            max_responses: 1,
            max_states: 500_000,
            guard_enabled: true,
        };
        let outcome = SpecModel::new(cfg).run();
        assert!(
            matches!(outcome, ModelOutcome::Verified { .. }),
            "expected verification: {outcome:?}"
        );
    }

    #[test]
    fn removing_the_guard_breaks_read_behind_protocols() {
        // Without the §7.3 guard a lagging replica serves stale data after
        // a newer response was already observed: the ghost clause trips.
        let outcome = SpecModel::new(small(true, false)).run();
        assert!(
            matches!(outcome, ModelOutcome::ViolationFound { .. }),
            "mutation survived: {outcome:?}"
        );
    }

    #[test]
    fn single_switch_no_failover_verifies_quickly() {
        let cfg = ModelConfig {
            switches: 1,
            ..small(false, true)
        };
        let outcome = SpecModel::new(cfg).run();
        assert!(matches!(outcome, ModelOutcome::Verified { .. }));
    }

    #[test]
    fn gte_and_maxw_are_lexicographic() {
        let a = W {
            switch: 1,
            seq: 9,
            item: 0,
        };
        let b = W {
            switch: 2,
            seq: 1,
            item: 1,
        };
        assert!(gte(b, a));
        assert!(!gte(a, b));
        assert_eq!(maxw(a, b), b);
        assert!(gte(a, BOTTOM) && gte(b, BOTTOM));
    }
}
