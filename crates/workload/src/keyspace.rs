//! Key spaces: how ranks map to application keys.
//!
//! Keys are pre-rendered (`"key-0000123"`) so the generator's hot path is a
//! clone of a reference-counted `Bytes`, not a format call.

use bytes::Bytes;
use rand::Rng;

use crate::zipf::Zipf;

/// How keys are drawn from the space.
#[derive(Clone, Debug)]
enum Draw {
    Uniform,
    Zipf(Zipf),
}

/// A fixed population of keys with a draw distribution.
#[derive(Clone, Debug)]
pub struct KeySpace {
    keys: Vec<Bytes>,
    draw: Draw,
}

impl KeySpace {
    /// `n` keys drawn uniformly (the paper's default: one million, §9.1).
    pub fn uniform(n: usize) -> Self {
        KeySpace {
            keys: Self::render(n),
            draw: Draw::Uniform,
        }
    }

    /// `n` keys drawn zipf(θ) (Figure 8 uses θ = 0.9).
    pub fn zipf(n: usize, theta: f64) -> Self {
        KeySpace {
            keys: Self::render(n),
            draw: Draw::Zipf(Zipf::new(n, theta)),
        }
    }

    fn render(n: usize) -> Vec<Bytes> {
        assert!(n > 0);
        (0..n).map(|i| Bytes::from(format!("key-{i:08}"))).collect()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the space is empty (never: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Draw one key.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Bytes {
        let idx = match &self.draw {
            Draw::Uniform => rng.gen_range(0..self.keys.len()),
            Draw::Zipf(z) => z.sample(rng),
        };
        self.keys[idx].clone()
    }

    /// The `i`-th key (rank order).
    pub fn key(&self, i: usize) -> Bytes {
        self.keys[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn uniform_covers_the_space() {
        let ks = KeySpace::uniform(100);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(ks.sample(&mut rng));
        }
        assert!(seen.len() > 95, "covered {}", seen.len());
    }

    #[test]
    fn zipf_skews_toward_rank_zero() {
        let ks = KeySpace::zipf(1000, 0.9);
        let mut rng = SmallRng::seed_from_u64(22);
        let mut counts: HashMap<Bytes, u32> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(ks.sample(&mut rng)).or_insert(0) += 1;
        }
        let top = counts.get(&ks.key(0)).copied().unwrap_or(0);
        let mid = counts.get(&ks.key(500)).copied().unwrap_or(0);
        assert!(top > 20 * mid.max(1), "top={top} mid={mid}");
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        let ks = KeySpace::uniform(10);
        assert_eq!(ks.len(), 10);
        assert_eq!(ks.key(3), Bytes::from_static(b"key-00000003"));
        let all: std::collections::HashSet<_> = (0..10).map(|i| ks.key(i)).collect();
        assert_eq!(all.len(), 10);
    }
}
