//! Workload generation: key distributions, read/write mixes, and YCSB-style
//! presets.
//!
//! The paper's default workload is one million objects, uniform keys, 5 %
//! writes (§9.1); Figure 8 adds a zipf-0.9 skewed variant. This crate
//! provides those distributions plus the standard YCSB mixes for the
//! examples.

#![forbid(unsafe_code)]

pub mod keyspace;
pub mod mix;
pub mod shard;
pub mod zipf;

pub use keyspace::KeySpace;
pub use mix::{Mix, WorkloadSpec, YcsbPreset};
pub use shard::ShardMap;
pub use zipf::Zipf;
