//! Read/write mixes and YCSB-style presets.

use bytes::Bytes;
use harmonia_types::OpKind;
use rand::Rng;

use crate::keyspace::KeySpace;

/// A read/write mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mix {
    /// Fraction of operations that are writes (0.0 ..= 1.0).
    pub write_ratio: f64,
}

impl Mix {
    /// The paper's default: 5 % writes (§9.1, matching the Facebook-style
    /// read-heavy workloads the introduction cites).
    pub fn paper_default() -> Self {
        Mix { write_ratio: 0.05 }
    }

    /// Read-only.
    pub fn read_only() -> Self {
        Mix { write_ratio: 0.0 }
    }

    /// Write-only.
    pub fn write_only() -> Self {
        Mix { write_ratio: 1.0 }
    }

    /// Decide the next operation kind.
    pub fn draw<R: Rng>(&self, rng: &mut R) -> OpKind {
        if self.write_ratio >= 1.0 {
            OpKind::Write
        } else if self.write_ratio <= 0.0 {
            OpKind::Read
        } else if rng.gen_bool(self.write_ratio) {
            OpKind::Write
        } else {
            OpKind::Read
        }
    }
}

/// YCSB core workload presets (Cooper et al., SoCC '10 — cited by §9.1 as
/// the justification for the 5 % write ratio).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbPreset {
    /// A: update heavy, 50 % writes, zipfian keys.
    A,
    /// B: read mostly, 5 % writes, zipfian keys.
    B,
    /// C: read only, zipfian keys.
    C,
}

impl YcsbPreset {
    /// The preset's write ratio.
    pub fn mix(self) -> Mix {
        match self {
            YcsbPreset::A => Mix { write_ratio: 0.5 },
            YcsbPreset::B => Mix { write_ratio: 0.05 },
            YcsbPreset::C => Mix { write_ratio: 0.0 },
        }
    }

    /// The preset's key distribution over `n` keys (YCSB uses zipf-0.99).
    pub fn keyspace(self, n: usize) -> KeySpace {
        KeySpace::zipf(n, 0.99)
    }
}

/// A complete workload: key space + mix + value size.
pub struct WorkloadSpec {
    /// Key population and distribution.
    pub keys: KeySpace,
    /// Read/write mix.
    pub mix: Mix,
    /// Value payload (shared buffer; cloned per write).
    pub value: Bytes,
}

impl WorkloadSpec {
    /// The paper's §9.1 default: one million uniform keys, 5 % writes,
    /// 128-byte values.
    pub fn paper_default() -> Self {
        WorkloadSpec {
            keys: KeySpace::uniform(1_000_000),
            mix: Mix::paper_default(),
            value: Bytes::from(vec![0x42u8; 128]),
        }
    }

    /// Build a spec with explicit parts.
    pub fn new(keys: KeySpace, mix: Mix, value_len: usize) -> Self {
        WorkloadSpec {
            keys,
            mix,
            value: Bytes::from(vec![0x42u8; value_len]),
        }
    }

    /// Draw the next operation: `(kind, key, value-if-write)`.
    pub fn next_op<R: Rng>(&self, rng: &mut R) -> (OpKind, Bytes, Option<Bytes>) {
        let kind = self.mix.draw(rng);
        let key = self.keys.sample(rng);
        let value = match kind {
            OpKind::Write => Some(self.value.clone()),
            OpKind::Read => None,
        };
        (kind, key, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mix_ratio_is_respected() {
        let mix = Mix { write_ratio: 0.2 };
        let mut rng = SmallRng::seed_from_u64(31);
        let writes = (0..10_000)
            .filter(|_| mix.draw(&mut rng) == OpKind::Write)
            .count();
        assert!((1800..2200).contains(&writes), "writes={writes}");
    }

    #[test]
    fn degenerate_mixes_never_sample() {
        let mut rng = SmallRng::seed_from_u64(32);
        assert_eq!(Mix::read_only().draw(&mut rng), OpKind::Read);
        assert_eq!(Mix::write_only().draw(&mut rng), OpKind::Write);
    }

    #[test]
    fn ycsb_presets_match_spec() {
        assert_eq!(YcsbPreset::A.mix().write_ratio, 0.5);
        assert_eq!(YcsbPreset::B.mix().write_ratio, 0.05);
        assert_eq!(YcsbPreset::C.mix().write_ratio, 0.0);
        assert_eq!(YcsbPreset::B.keyspace(100).len(), 100);
    }

    #[test]
    fn workload_spec_draws_complete_ops() {
        let spec = WorkloadSpec::new(KeySpace::uniform(50), Mix { write_ratio: 0.5 }, 16);
        let mut rng = SmallRng::seed_from_u64(33);
        let mut saw_write = false;
        let mut saw_read = false;
        for _ in 0..100 {
            let (kind, key, value) = spec.next_op(&mut rng);
            assert!(key.starts_with(b"key-"));
            match kind {
                OpKind::Write => {
                    assert_eq!(value.as_ref().map(|v| v.len()), Some(16));
                    saw_write = true;
                }
                OpKind::Read => {
                    assert!(value.is_none());
                    saw_read = true;
                }
            }
        }
        assert!(saw_write && saw_read);
    }
}
