//! Keyspace partitioning for sharded multi-group deployments (§6.3).
//!
//! A spine switch hosts the Harmonia scheduler for many replica groups at
//! once; each object belongs to exactly one group. The assignment must be a
//! pure function of the [`ObjectId`] — clients, the switch, and the tests
//! all have to agree on it without coordination — so the shard map is just a
//! stateless hash of the 32-bit object id.
//!
//! The `ObjectId` is already an FNV-1a digest of the application key, but
//! consecutive ids (and ids that differ only in low bits) must still spread
//! evenly across a *small* group count, so the map applies a Fibonacci
//! multiplicative mix before reducing modulo the group count.

use harmonia_types::ObjectId;

/// Maps every object to one of `groups` replica groups.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardMap {
    groups: u32,
}

impl ShardMap {
    /// A map over `groups` replica groups (at least one).
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "a deployment needs at least one replica group");
        assert!(groups <= u32::MAX as usize, "group count must fit in u32");
        ShardMap {
            groups: groups as u32,
        }
    }

    /// Number of replica groups in the deployment.
    pub fn groups(&self) -> usize {
        self.groups as usize
    }

    /// The group serving `obj`. Stable for the lifetime of the deployment:
    /// resharding means a new map (and a data migration this crate does not
    /// model).
    pub fn shard_of(&self, obj: ObjectId) -> u32 {
        // Fibonacci hashing: multiply the 32-bit id by ⌊2^64/φ⌋ (wrapping)
        // and keep bits 32..63 of the product — each such bit depends on
        // every input bit, which spreads even near-identical ids before the
        // modulo.
        let mixed = (u64::from(obj.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (mixed as u32) % self.groups
    }

    /// The group serving the object `key` hashes to.
    pub fn shard_of_key(&self, key: &[u8]) -> u32 {
        self.shard_of(ObjectId::from_key(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group_maps_everything_to_zero() {
        let m = ShardMap::new(1);
        for i in 0..100 {
            assert_eq!(m.shard_of(ObjectId(i)), 0);
        }
    }

    #[test]
    fn shards_are_stable_and_in_range() {
        let m = ShardMap::new(7);
        for i in 0..1000u32 {
            let s = m.shard_of(ObjectId(i));
            assert!(s < 7);
            assert_eq!(s, m.shard_of(ObjectId(i)), "must be a pure function");
        }
    }

    #[test]
    fn key_and_object_routes_agree() {
        let m = ShardMap::new(4);
        for i in 0..50 {
            let key = format!("key-{i}");
            assert_eq!(
                m.shard_of_key(key.as_bytes()),
                m.shard_of(ObjectId::from_key(key.as_bytes()))
            );
        }
    }

    #[test]
    fn typical_keys_spread_across_groups() {
        // Not a uniformity proof — just that no group starves under the
        // workload generator's key shapes.
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[m.shard_of_key(format!("key-{i:08}").as_bytes()) as usize] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(&c),
                "group {g} got {c} of 4000 keys: {counts:?}"
            );
        }
    }
}
