//! Zipfian sampling.
//!
//! Draws ranks in `1..=n` with `P(rank = k) ∝ 1/k^theta`. Implementation:
//! inverse-CDF over a precomputed cumulative table with binary search —
//! exact (no rejection loop), deterministic given the RNG, and fast enough
//! for millions of draws over the paper's one-million-key space. Table
//! construction is O(n) once per generator.

use rand::Rng;

/// A zipf(θ) sampler over ranks `1..=n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with exponent `theta` (0 = uniform;
    /// the paper's skewed workload uses 0.9).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the upper end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n` (0-based; rank 0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_theta_concentrates_mass_on_low_ranks() {
        let z = Zipf::new(1000, 0.9);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
        // zipf-0.9 over 1000 keys: top rank carries a few percent.
        assert!(z.pmf(0) > 0.05, "pmf(0) = {}", z.pmf(0));
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(100, 0.9);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 200_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 50] {
            let expect = z.pmf(k) * n as f64;
            let got = counts[k] as f64;
            assert!(
                (got - expect).abs() < expect.mul_add(0.1, 50.0),
                "rank {k}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let z = Zipf::new(1000, 0.9);
        for w in z.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*z.cdf.last().unwrap(), 1.0);
    }
}
