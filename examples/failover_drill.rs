//! Switch failover drill — a miniature of Figure 10.
//!
//! A steady mixed workload runs against a Harmonia chain cluster; at t=20 ms
//! the switch is stopped (throughput collapses), at t=30 ms a replacement
//! with a fresh incarnation id takes over. The replacement must route
//! through the normal protocol until the first WRITE-COMPLETION bearing its
//! own id, then fast-path reads resume and throughput fully recovers
//! (§5.3).
//!
//! Run with: `cargo run --release --example failover_drill`

use bytes::Bytes;
use harmonia::prelude::*;
use harmonia::workload::KeySpace;

const RATE: f64 = 1_500_000.0;
const BUCKET_MS: u64 = 5;
const END_MS: u64 = 60;

fn main() {
    let config = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .replicas(3);
    let mut sim = config.build_sim();
    let keys = KeySpace::uniform(50_000);
    let value = Bytes::from(vec![9u8; 64]);
    let source: SourceFn = Box::new(move |rng| {
        use rand::Rng;
        let key = keys.sample(rng);
        if rng.gen_bool(0.05) {
            OpSpec::write(key, value.clone())
        } else {
            OpSpec::read(key)
        }
    });
    let client = sim.add_open_loop_client(ClientId(1), RATE, Duration::from_millis(5), source);

    let t = |ms: u64| Instant::ZERO + Duration::from_millis(ms);
    schedule_switch_failure(sim.world_mut(), t(20), config.switch_addr());
    schedule_switch_replacement(sim.world_mut(), t(30), &config, SwitchId(2), vec![client]);

    println!("time_ms\tthroughput_mrps\tphase");
    let mut recovered_at = None;
    for bucket in 0..(END_MS / BUCKET_MS) {
        let start = bucket * BUCKET_MS;
        let end = start + BUCKET_MS;
        sim.run_until(t(start));
        sim.world_mut().metrics_mut().reset();
        sim.run_until(t(end));
        let done = sim.world().metrics().counter(metrics::READ_DONE)
            + sim.world().metrics().counter(metrics::WRITE_DONE);
        let mrps = done as f64 / (BUCKET_MS as f64 / 1e3) / 1e6;
        let phase = if end <= 20 {
            "normal"
        } else if end <= 30 {
            "switch down"
        } else {
            "replacement active"
        };
        if recovered_at.is_none() && end > 30 && mrps > 1.2 {
            recovered_at = Some(end);
        }
        println!("{end}\t{mrps:.3}\t{phase}");
    }

    match recovered_at {
        Some(ms) => println!(
            "\nfull throughput restored by t={ms} ms (switch died at 20 ms, replaced at 30 ms)"
        ),
        None => println!("\nWARNING: throughput did not recover — investigate!"),
    }
    assert!(recovered_at.is_some(), "failover must recover");
}
