//! Observability dump: run the same small workload on a chosen driver, then
//! print the unified [`ObsSnapshot`] through both exporters plus a trace
//! excerpt — everything a scrape endpoint or a post-mortem would read.
//!
//! Run with: `cargo run --example obs_dump [sim|live|udp] [prom|json|trace|all]`
//!
//! The driver argument picks the substrate (default `sim`, which is fully
//! deterministic: same binary, same bytes). The format argument picks which
//! sections print (default `all`). CI smoke-runs `prom` and `json` per
//! driver and validates the output shape.

use harmonia::prelude::*;

fn usage() -> ! {
    eprintln!("usage: obs_dump [sim|live|udp] [prom|json|trace|all]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let driver = args.first().map(String::as_str).unwrap_or("sim");
    let format = args.get(1).map(String::as_str).unwrap_or("all");
    if !matches!(format, "prom" | "json" | "trace" | "all") {
        usage();
    }

    let spec = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .groups(2)
        .seed(7);
    let mut cluster: Box<dyn Cluster> = match driver {
        "sim" => Box::new(spec.build_sim()),
        "live" => Box::new(spec.spawn_live()),
        "udp" => Box::new(spec.spawn_udp()),
        _ => usage(),
    };

    // A small mixed workload so every layer has something to report:
    // 3 closed-loop clients, 30 ops each, 35% writes over 8 keys.
    let plans: Vec<Vec<OpSpec>> = (0..3u64)
        .map(|c| {
            (0..30u64)
                .map(|i| {
                    let key = bytes::Bytes::from(format!("key-{}", (c * 31 + i * 7) % 8));
                    if (c + i) % 3 == 0 {
                        OpSpec::write(key, bytes::Bytes::from(format!("v{c}-{i}")))
                    } else {
                        OpSpec::read(key)
                    }
                })
                .collect()
        })
        .collect();
    let histories = cluster.run_plans(plans);
    let completed: usize = histories.iter().flatten().filter(|r| r.ok).count();

    let snap = cluster.obs_snapshot();
    if matches!(format, "prom" | "all") {
        print!("{}", prometheus_text(&snap));
    }
    if matches!(format, "json" | "all") {
        print!("{}", json_text(&snap));
    }
    if matches!(format, "trace" | "all") {
        // The first traced request's full lifecycle, as a worked example of
        // what a failed linearizability check attaches automatically.
        let events = cluster.trace_events();
        if let Some(first) = events.first() {
            let excerpt: Vec<TraceEvent> = events
                .iter()
                .copied()
                .filter(|e| e.id == first.id)
                .collect();
            eprintln!("--- trace of request {} ---", first.id);
            eprint!("{}", harmonia::obs::format_trace(&excerpt));
            eprintln!(
                "({} events recorded, {} dropped by ring overflow)",
                snap.trace.recorded, snap.trace.dropped
            );
        }
    }
    eprintln!("{driver}: {completed}/90 ops completed");
}
