//! A read-heavy "photo metadata store" — the workload class that motivates
//! Harmonia (§1 cites read:write ratios of 30:1 in production stores).
//!
//! Runs the same skewed, read-dominated workload against chain replication
//! with and without Harmonia in the deterministic simulator, and prints the
//! throughput each configuration sustains. The Harmonia run should serve
//! roughly `replicas ×` the baseline's reads.
//!
//! Run with: `cargo run --release --example photo_store`

use bytes::Bytes;
use harmonia::prelude::*;
use harmonia::workload::{KeySpace, Mix};

/// Offered load far beyond one server's ~0.92 MQPS read capacity.
const OFFERED_RPS: f64 = 3_000_000.0;
const WARMUP_MS: u64 = 10;
const MEASURE_MS: u64 = 40;

fn run(harmonia: bool) -> (f64, f64, f64) {
    let mut sim = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .harmonia(harmonia)
        .replicas(3)
        .build_sim();

    // Photo-tagging shape: 1/30 writes, zipf-skewed popularity.
    let keys = KeySpace::zipf(100_000, 0.9);
    let mix = Mix {
        write_ratio: 1.0 / 30.0,
    };
    let value = Bytes::from(vec![7u8; 256]);
    let source: SourceFn = Box::new(move |rng| {
        let key = keys.sample(rng);
        match mix.draw(rng) {
            OpKind::Write => OpSpec::write(key, value.clone()),
            OpKind::Read => OpSpec::read(key),
        }
    });
    // Timeout longer than the whole run: at overload we want the sustained
    // completion rate (= server capacity), not timeout-culled counts.
    sim.add_open_loop_client(
        ClientId(1),
        OFFERED_RPS,
        Duration::from_millis(1000),
        source,
    );

    sim.run_until(Instant::ZERO + Duration::from_millis(WARMUP_MS));
    sim.world_mut().metrics_mut().reset();
    sim.run_until(Instant::ZERO + Duration::from_millis(WARMUP_MS + MEASURE_MS));

    let secs = MEASURE_MS as f64 / 1e3;
    let reads = sim.world().metrics().counter(metrics::READ_DONE) as f64 / secs / 1e6;
    let writes = sim.world().metrics().counter(metrics::WRITE_DONE) as f64 / secs / 1e6;
    let p99 = sim
        .world()
        .metrics()
        .histogram(metrics::READ_LATENCY)
        .map(|h| h.percentile(0.99).as_micros_f64())
        .unwrap_or(0.0);
    (reads, writes, p99)
}

fn main() {
    println!("photo store: 100k photos, zipf-0.9 popularity, 1 write per 30 reads");
    println!("offered load {} MRPS, 3-replica chain\n", OFFERED_RPS / 1e6);
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "configuration", "reads MRPS", "writes MRPS", "p99 read (us)"
    );

    let (r0, w0, p0) = run(false);
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>14.1}",
        "chain (baseline)", r0, w0, p0
    );
    let (r1, w1, p1) = run(true);
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>14.1}",
        "chain + Harmonia", r1, w1, p1
    );

    let speedup = r1 / r0.max(1e-9);
    println!("\nread speedup: {speedup:.2}x (expect ≈ number of replicas = 3)");
    assert!(speedup > 2.0, "Harmonia should scale reads across replicas");
}
