//! Generality demo (§9.5): run the same mixed workload over every
//! replication protocol, with and without Harmonia, and print a comparison
//! table — a miniature of Figure 9.
//!
//! Run with: `cargo run --release --example protocol_comparison`

use bytes::Bytes;
use harmonia::prelude::*;
use harmonia::workload::KeySpace;

const OFFERED_RPS: f64 = 2_500_000.0;
const WRITE_RATIO: f64 = 0.05;
const WARMUP_MS: u64 = 10;
const MEASURE_MS: u64 = 30;

fn run(protocol: ProtocolKind, harmonia: bool) -> (f64, f64) {
    let mut sim = DeploymentSpec::new()
        .protocol(protocol)
        .harmonia(harmonia)
        .replicas(3)
        .build_sim();
    let keys = KeySpace::uniform(100_000);
    let value = Bytes::from(vec![1u8; 128]);
    let source: SourceFn = Box::new(move |rng| {
        use rand::Rng;
        let key = keys.sample(rng);
        if rng.gen_bool(WRITE_RATIO) {
            OpSpec::write(key, value.clone())
        } else {
            OpSpec::read(key)
        }
    });
    // Timeout longer than the run: report sustained capacity, not
    // timeout-culled counts (the system is deliberately driven past
    // saturation).
    sim.add_open_loop_client(
        ClientId(1),
        OFFERED_RPS,
        Duration::from_millis(1000),
        source,
    );
    sim.run_until(Instant::ZERO + Duration::from_millis(WARMUP_MS));
    sim.world_mut().metrics_mut().reset();
    sim.run_until(Instant::ZERO + Duration::from_millis(WARMUP_MS + MEASURE_MS));
    let secs = MEASURE_MS as f64 / 1e3;
    (
        sim.world().metrics().counter(metrics::READ_DONE) as f64 / secs / 1e6,
        sim.world().metrics().counter(metrics::WRITE_DONE) as f64 / secs / 1e6,
    )
}

fn main() {
    println!(
        "mixed workload ({:.0}% writes), 3 replicas, offered {} MRPS\n",
        WRITE_RATIO * 100.0,
        OFFERED_RPS / 1e6
    );
    println!(
        "{:<18} {:>14} {:>14} {:>10}",
        "protocol", "baseline MRPS", "harmonia MRPS", "speedup"
    );
    for (name, protocol, has_harmonia) in [
        ("primary-backup", ProtocolKind::PrimaryBackup, true),
        ("chain", ProtocolKind::Chain, true),
        ("craq", ProtocolKind::Craq, false),
        ("vr/multi-paxos", ProtocolKind::Vr, true),
        ("nopaxos", ProtocolKind::Nopaxos, true),
    ] {
        let (r0, w0) = run(protocol, false);
        let base = r0 + w0;
        if has_harmonia {
            let (r1, w1) = run(protocol, true);
            let harm = r1 + w1;
            println!(
                "{:<18} {:>14.3} {:>14.3} {:>9.2}x",
                name,
                base,
                harm,
                harm / base.max(1e-9)
            );
        } else {
            println!(
                "{:<18} {:>14.3} {:>14} {:>10}",
                name, base, "— (is the baseline alternative)", ""
            );
        }
    }
    println!("\nExpected shape (Figure 9): every protocol gains ≈3x on this");
    println!("read-heavy mix; CRAQ already scales reads at the cost of writes.");
}
