//! Quickstart: spin up a Harmonia-accelerated chain-replication cluster on
//! OS threads, talk to it like a key-value store, and peek at how the
//! switch routed the traffic.
//!
//! Run with: `cargo run --example quickstart`

use harmonia::prelude::*;

fn main() {
    // Three replicas running chain replication, with the in-network
    // conflict detector enabled — the paper's default setup (§9.1).
    let cluster = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .replicas(3)
        .spawn_live();
    let mut client = cluster.client();

    // Plain GET/SET — the client library hides the packet format, the
    // switch, and the replication protocol entirely.
    client.set("user:1:name", "ada").expect("write");
    client.set("user:1:lang", "rust").expect("write");
    client.set("user:2:name", "grace").expect("write");

    let name = client.get("user:1:name").expect("read");
    println!(
        "user:1:name = {:?}",
        name.as_deref().map(String::from_utf8_lossy)
    );
    assert_eq!(name.as_deref(), Some(&b"ada"[..]));

    // Overwrites behave like a register.
    client.set("user:1:lang", "rust+p4").expect("write");
    let lang = client.get("user:1:lang").expect("read");
    assert_eq!(lang.as_deref(), Some(&b"rust+p4"[..]));

    // Missing keys read as None.
    assert_eq!(client.get("user:999").expect("read"), None);

    // A second client sees the first client's writes (linearizability is
    // cross-client by definition).
    let mut other = cluster.client();
    assert_eq!(
        other.get("user:2:name").expect("read").as_deref(),
        Some(&b"grace"[..])
    );

    println!("all reads observed the committed values — shutting down");
    cluster.shutdown();
}
