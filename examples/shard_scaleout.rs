//! Sharded scale-out (§6.3): many replica groups behind one spine switch.
//!
//! Rack-scale Harmonia pairs one replica group with one ToR switch. For
//! cloud-scale storage the paper routes *many* groups' traffic through a
//! single designated spine switch — each group's dirty set is tiny, so one
//! switch's SRAM hosts hundreds of groups. This example spins up a 4-group
//! deployment on OS threads, spreads a keyspace over it, and then checks
//! the §6.3 capacity claim with the switch's own memory accounting.
//!
//! Run with: `cargo run --example shard_scaleout`

use harmonia::prelude::*;

fn main() {
    // Four 3-replica chain-replication groups, all scheduled by one spine
    // switch. The keyspace is partitioned by a pure hash of the object id,
    // so clients stay oblivious: they talk to the switch, the switch
    // routes each request to its key's group.
    let config = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .groups(4)
        .replicas(3)
        // The §9.4 measured geometry: 2000 slots × 8 bytes = 16 KB per
        // group — the number behind "one switch hosts hundreds of groups".
        .table(TableConfig {
            stages: 1,
            slots_per_stage: 2000,
            entry_bytes: 8,
        });
    let cluster = config.spawn_live();
    let mut client = cluster.client();

    // The same GET/SET API as the single-group deployment.
    for user in 0..200 {
        client
            .set(format!("user:{user}"), format!("profile-{user}"))
            .expect("write");
    }
    for user in (0..200).rev() {
        let got = client.get(format!("user:{user}")).expect("read");
        assert_eq!(got.as_deref(), Some(format!("profile-{user}").as_bytes()));
    }

    // Where did the keys actually go? Ask the shard map and the switch.
    let map = config.shard_map();
    for g in 0..4u32 {
        let owned = (0..200)
            .filter(|u| map.shard_of_key(format!("user:{u}").as_bytes()) == g)
            .count();
        let stats = cluster.group_stats(GroupId(g)).expect("hosted group");
        println!(
            "group {g}: owns {owned:3} of 200 keys, forwarded {:4} writes, \
             served {:4} fast-path reads",
            stats.writes_forwarded, stats.reads_fast_path
        );
        assert!(owned > 0, "no group should starve");
    }

    // The §6.3 claim, quantitatively: this deployment's whole dirty-set
    // footprint vs. a commodity switch's tens of MB of SRAM.
    let used = cluster.switch_memory_bytes().expect("switch is alive");
    let per_group = used / 4;
    let budget = 10 * 1024 * 1024;
    println!(
        "switch SRAM: {used} bytes for 4 groups ({per_group} bytes/group) — \
         a 10 MB switch could host ~{} such groups",
        SpineSwitch::capacity_in(config.table, budget)
    );
    assert!(used < budget / 10);

    println!("4 groups, one switch, every read observed its write — shutting down");
    cluster.shutdown();
}
