//! The UDP driver end to end: a sharded deployment whose every packet
//! crosses a real loopback `UdpSocket` through the wire codec — including
//! the §5.3 switch replacement (the pipeline fleet's sockets are swapped in
//! the deployment's address book) and a run under injected datagram faults.
//!
//! ```sh
//! cargo run --example udp_cluster
//! ```

use harmonia::prelude::*;

fn main() {
    // 1. A 2-group chain deployment over loopback UDP sockets.
    let spec = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .replicas(3)
        .groups(2);
    let mut cluster = spec.spawn_udp();
    let mut client = cluster.client();

    println!("== UDP cluster: every packet is a real datagram ==");
    for i in 0..20 {
        client
            .set(format!("user:{i}"), format!("profile-{i}"))
            .expect("write over UDP");
    }
    assert_eq!(
        client.get("user:7").unwrap().as_deref(),
        Some(&b"profile-7"[..])
    );
    let stats = cluster.switch_stats().expect("switch is up");
    println!(
        "switch saw {} writes, {} fast-path / {} normal reads across {} groups",
        stats.writes_forwarded,
        stats.reads_fast_path,
        stats.reads_normal,
        cluster.switch_view().unwrap().group_count(),
    );

    // 2. §5.3: kill the switch fleet (its sockets leave the address book),
    //    activate a replacement on fresh sockets, service resumes.
    println!("\n== switch replacement over real sockets ==");
    cluster.kill_switch();
    assert!(cluster.switch_stats().is_none());
    let mut stranded = cluster.client();
    assert!(
        stranded.get("user:7").is_err(),
        "no switch, requests vanish into dropped datagrams"
    );
    cluster.replace_switch(SwitchId(2));
    assert_eq!(
        client.get("user:7").unwrap().as_deref(),
        Some(&b"profile-7"[..]),
        "replacement serves reads through the normal path"
    );
    println!(
        "incarnation {:?} serving; fast path re-arms per group on its first completion",
        cluster.switch_incarnation().unwrap()
    );
    cluster.shutdown();

    // 3. The same deployment under an adversarial network: 3% loss,
    //    duplication, and reordering injected at the client and switch
    //    sockets by a seeded FaultyTransport. Retries and the exactly-once
    //    session layer absorb all of it.
    println!("\n== datagram faults: loss + duplication + reordering ==");
    let faulty = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .groups(2)
        .seed(42)
        .link(LinkConfig {
            drop_prob: 0.03,
            duplicate_prob: 0.03,
            reorder_prob: 0.03,
            ..LinkConfig::ideal(Duration::from_micros(5))
        });
    let cluster = faulty.spawn_udp();
    let mut client = cluster.client();
    let mut completed = 0u32;
    for i in 0..60 {
        let key = format!("k{}", i % 10);
        let ok = if i % 3 == 0 {
            client.set(key, format!("v{i}")).is_ok()
        } else {
            client.get(key).is_ok()
        };
        completed += u32::from(ok);
    }
    let (dropped, duplicated, reordered) = cluster.fault_counts();
    println!(
        "{completed}/60 ops completed while the adversary dropped {dropped}, \
         duplicated {duplicated}, reordered {reordered} datagrams"
    );
    cluster.shutdown();
}
