//! # Harmonia
//!
//! A full reproduction of **"Harmonia: Near-Linear Scalability for
//! Replicated Storage with In-Network Conflict Detection"** (Zhu et al.,
//! VLDB 2019) as a Rust library: the in-switch read-write conflict detector,
//! five replication protocols with their Harmonia adaptations, a calibrated
//! discrete-event testbed, a live threaded runtime, linearizability
//! tooling, and benchmark harnesses regenerating every figure of the
//! paper's evaluation.
//!
//! ## The idea, in one paragraph
//!
//! Strongly consistent replication usually caps read throughput at one
//! server, because only a designated replica (chain tail, Paxos leader) may
//! answer reads safely. Harmonia observes that at any instant only the
//! objects with *in-flight writes* are dangerous; everything else is
//! identical on every replica. A programmable switch sits on the data path
//! anyway — so let it track the *dirty set* at line rate, send reads for
//! clean objects to a random replica (stamped with the last-committed
//! point so the replica can double-check), and leave everything else to the
//! unmodified protocol. Read throughput then scales with the number of
//! replicas while writes and consistency are untouched.
//!
//! ## One API, every deployment shape
//!
//! A single [`DeploymentSpec`](prelude::DeploymentSpec) describes any
//! deployment: unsharded (Figure 1) is `groups(1)` — the default — and the
//! §6.3 cloud-scale sharded deployment is the same spec with `groups(n)`.
//! [`build_sim()`](prelude::DeploymentSpec::build_sim) assembles it in the
//! deterministic simulator; [`spawn_live()`](prelude::DeploymentSpec::spawn_live)
//! on OS threads over in-process channels;
//! [`spawn_udp()`](prelude::DeploymentSpec::spawn_udp) on OS threads over
//! real loopback `UdpSocket` datagrams (the [`net`] transport — every
//! packet crosses the wire codec, and seeded loss/duplication/reordering
//! can be injected at the socket boundary). All three implement the
//! [`Cluster`](prelude::Cluster) trait, so harnesses can hold any of them
//! as `Box<dyn Cluster>` and never care which driver runs the protocol —
//! the drop-in claim of the paper, in the types.
//!
//! ## Quick start (live, threaded)
//!
//! ```
//! use harmonia::prelude::*;
//!
//! let cluster = DeploymentSpec::new()
//!     .protocol(ProtocolKind::Chain)
//!     .replicas(3)
//!     .spawn_live();
//! let mut client = cluster.client();
//! client.set("user:42", "alice").unwrap();
//! assert_eq!(client.get("user:42").unwrap().as_deref(), Some(&b"alice"[..]));
//! cluster.shutdown();
//! ```
//!
//! ## Quick start (simulated, deterministic)
//!
//! ```
//! use harmonia::prelude::*;
//! use bytes::Bytes;
//!
//! let mut sim = DeploymentSpec::new().seed(7).build_sim();
//! let source: SourceFn = Box::new(|_rng| OpSpec::read(Bytes::from_static(b"k")));
//! sim.add_open_loop_client(ClientId(1), 100_000.0, Duration::from_millis(10), source);
//! sim.run_until(Instant::ZERO + Duration::from_millis(5));
//! assert!(sim.world().metrics().counter("client.read.done") > 0);
//! ```
//!
//! ## One more knob, sixteen more groups
//!
//! Scenario diversity costs one config change, not another assembly path:
//! the same spec with `groups(4)` is the §6.3 sharded deployment, on either
//! driver.
//!
//! ```
//! use harmonia::prelude::*;
//!
//! let mut sim = DeploymentSpec::new().groups(4).build_sim();
//! let mut client = sim.client();
//! client.set(b"user:1", b"profile").unwrap();
//! assert_eq!(client.get(b"user:1").unwrap().as_deref(), Some(&b"profile"[..]));
//! drop(client);
//! assert_eq!(sim.switch_memory_bytes().unwrap() % 4, 0); // 4 equal dirty sets
//! ```
//!
//! ## Live data plane
//!
//! The live driver is a **parallel data plane**: one pipeline thread per
//! replica group, each exclusively owning that group's
//! [`GroupCore`](core::switch_actor::GroupCore) (conflict detector, OUM
//! sequencer, forwarding table, counters), behind a *stateless* spine —
//! sending to the switch address shard-routes the packet on the sender's
//! own thread straight onto the owning group's pipeline. No lock is taken
//! on the packet path; pipelines drain their ingress in batches; aggregate
//! inspection folds per-pipeline
//! [`GroupObservation`](switch::GroupObservation) snapshots through
//! [`SpineView`](switch::SpineView). The §5.3 `kill_switch` /
//! `replace_switch` verbs tear down and re-spawn the whole fleet under a
//! fresh incarnation. This mirrors the hardware: a Tofino processes
//! different groups' packets in parallel at line rate, so group count buys
//! packet-level parallelism (`crates/bench`'s `live_scaleout` sweep
//! measures it; scaling tracks the host's core count). The deterministic
//! simulator keeps all group cores behind one single-threaded actor —
//! identical logic, bit-identical replays.
//!
//! The **UDP driver** ([`core::udp`]) reuses every one of those loops
//! behind a transport abstraction and swaps the channels for
//! [`net`]-crate loopback sockets: the spine route resolves to the owning
//! group pipeline's *socket address* on the sending thread, `kill_switch`
//! tears the fleet's sockets out of the deployment's address book, and
//! `tests/udp_cluster.rs` runs the whole thing under 5% datagram
//! loss + duplication + reordering with every history through the
//! Wing–Gong checker.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | object ids, switch-epoch sequence numbers, packets, wire codec |
//! | [`sim`] | deterministic discrete-event simulator + network + metrics |
//! | [`kv`] | in-memory versioned KV engine (the Redis substitute) |
//! | [`switch`] | switch data-plane emulation: register arrays, multi-stage hash table, Algorithm 1 |
//! | [`replication`] | PB, chain, CRAQ, VR, NOPaxos — each ± Harmonia |
//! | [`net`] | real datagram transport: `NodeId`-addressed UDP loopback sockets, spine shard routing, seeded fault injection |
//! | [`core`] | the `DeploymentSpec`/`Cluster` API, clients, failover scripting, all three drivers |
//! | [`workload`] | uniform/zipf key spaces, mixes, YCSB presets |
//! | [`verify`] | linearizability checker + TLA+-mirror model checker |
//!
//! ## Pre-`DeploymentSpec` API
//!
//! The pre-redesign entry points (`ClusterConfig` + `build_world`,
//! `ShardedClusterConfig` + `build_sharded_world`, `LiveCluster::spawn`,
//! `ShardedLiveCluster`, `SwitchCore::new_for[_sharded]`,
//! `add_[sharded_]open_loop_client`) shipped as `#[deprecated]` shims for
//! exactly one release and were **removed in 0.x**. Build a
//! [`DeploymentSpec`](prelude::DeploymentSpec) instead; same-seed
//! `groups(1)` runs replay the old unsharded assembly bit-for-bit
//! (`tests/determinism.rs` keeps proving it against a hand-assembled
//! pre-redesign reference).

#![forbid(unsafe_code)]

pub use harmonia_core as core;
pub use harmonia_kv as kv;
pub use harmonia_net as net;
pub use harmonia_obs as obs;
pub use harmonia_replication as replication;
pub use harmonia_sim as sim;
pub use harmonia_switch as switch;
pub use harmonia_types as types;
pub use harmonia_verify as verify;
pub use harmonia_workload as workload;

/// Everything a typical user needs.
pub mod prelude {
    pub use harmonia_core::client::{metrics, OpSpec, SourceFn};
    pub use harmonia_core::deployment::{Cluster, DeploymentSpec, KvClient, SimCluster};
    pub use harmonia_core::failover::{
        schedule_replica_recovery, schedule_replica_removal, schedule_switch_failure,
        schedule_switch_replacement,
    };
    pub use harmonia_core::live::{LiveClient, LiveCluster, LiveError};
    pub use harmonia_core::msg::{CostModel, Msg};
    pub use harmonia_core::udp::UdpCluster;
    pub use harmonia_core::{ClosedLoopClient, OpenLoopClient, RecordedOp, SwitchActor};
    pub use harmonia_obs::{json_text, prometheus_text, ObsSnapshot, TraceEvent, TraceStage};
    pub use harmonia_replication::{GroupConfig, ProtocolKind};
    pub use harmonia_sim::{LinkConfig, NetworkModel, World, WorldConfig};
    pub use harmonia_switch::{
        ConflictDetector, GroupId, MultiStageHashTable, ResourceModel, SpineSwitch, TableConfig,
    };
    pub use harmonia_types::{
        ClientId, Duration, Instant, NodeId, ObjectId, OpKind, ReplicaId, SwitchId, SwitchSeq,
    };
    pub use harmonia_verify::{check_history, ModelConfig, SpecModel};
    pub use harmonia_workload::ShardMap;
    pub use harmonia_workload::{KeySpace, Mix, WorkloadSpec, YcsbPreset};
}
