//! # Harmonia
//!
//! A full reproduction of **"Harmonia: Near-Linear Scalability for
//! Replicated Storage with In-Network Conflict Detection"** (Zhu et al.,
//! VLDB 2019) as a Rust library: the in-switch read-write conflict detector,
//! five replication protocols with their Harmonia adaptations, a calibrated
//! discrete-event testbed, a live threaded runtime, linearizability
//! tooling, and benchmark harnesses regenerating every figure of the
//! paper's evaluation.
//!
//! ## The idea, in one paragraph
//!
//! Strongly consistent replication usually caps read throughput at one
//! server, because only a designated replica (chain tail, Paxos leader) may
//! answer reads safely. Harmonia observes that at any instant only the
//! objects with *in-flight writes* are dangerous; everything else is
//! identical on every replica. A programmable switch sits on the data path
//! anyway — so let it track the *dirty set* at line rate, send reads for
//! clean objects to a random replica (stamped with the last-committed
//! point so the replica can double-check), and leave everything else to the
//! unmodified protocol. Read throughput then scales with the number of
//! replicas while writes and consistency are untouched.
//!
//! ## Quick start (live, threaded)
//!
//! ```
//! use harmonia::prelude::*;
//!
//! let config = ClusterConfig {
//!     protocol: ProtocolKind::Chain,
//!     harmonia: true,
//!     replicas: 3,
//!     ..ClusterConfig::default()
//! };
//! let cluster = LiveCluster::spawn(&config);
//! let mut client = cluster.client();
//! client.set("user:42", "alice").unwrap();
//! assert_eq!(client.get("user:42").unwrap().as_deref(), Some(&b"alice"[..]));
//! cluster.shutdown();
//! ```
//!
//! ## Quick start (simulated, deterministic)
//!
//! ```
//! use harmonia::prelude::*;
//! use bytes::Bytes;
//!
//! let config = ClusterConfig::default();
//! let mut world = build_world(&config);
//! let source: SourceFn = Box::new(|_rng| OpSpec::read(Bytes::from_static(b"k")));
//! add_open_loop_client(
//!     &mut world, &config, ClientId(1),
//!     100_000.0, Duration::from_millis(10), source,
//! );
//! world.run_until(Instant::ZERO + Duration::from_millis(5));
//! assert!(world.metrics().counter("client.read.done") > 0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | object ids, switch-epoch sequence numbers, packets, wire codec |
//! | [`sim`] | deterministic discrete-event simulator + network + metrics |
//! | [`kv`] | in-memory versioned KV engine (the Redis substitute) |
//! | [`switch`] | switch data-plane emulation: register arrays, multi-stage hash table, Algorithm 1 |
//! | [`replication`] | PB, chain, CRAQ, VR, NOPaxos — each ± Harmonia |
//! | [`core`] | cluster assembly, clients, failover scripting, live driver |
//! | [`workload`] | uniform/zipf key spaces, mixes, YCSB presets |
//! | [`verify`] | linearizability checker + TLA+-mirror model checker |

pub use harmonia_core as core;
pub use harmonia_kv as kv;
pub use harmonia_replication as replication;
pub use harmonia_sim as sim;
pub use harmonia_switch as switch;
pub use harmonia_types as types;
pub use harmonia_verify as verify;
pub use harmonia_workload as workload;

/// Everything a typical user needs.
pub mod prelude {
    pub use harmonia_core::client::{metrics, OpSpec, SourceFn};
    pub use harmonia_core::cluster::{add_open_loop_client, build_world, ClusterConfig};
    pub use harmonia_core::failover::{
        schedule_replica_removal, schedule_switch_failure, schedule_switch_replacement,
    };
    pub use harmonia_core::live::{LiveClient, LiveCluster, LiveError, ShardedLiveCluster};
    pub use harmonia_core::msg::{CostModel, Msg};
    pub use harmonia_core::sharded::{
        add_sharded_open_loop_client, build_sharded_world, ShardedClusterConfig,
    };
    pub use harmonia_core::{ClosedLoopClient, OpenLoopClient, SwitchActor};
    pub use harmonia_replication::{GroupConfig, ProtocolKind};
    pub use harmonia_sim::{LinkConfig, NetworkModel, World, WorldConfig};
    pub use harmonia_switch::{
        ConflictDetector, GroupId, MultiStageHashTable, ResourceModel, SpineSwitch, TableConfig,
    };
    pub use harmonia_types::{
        ClientId, Duration, Instant, NodeId, ObjectId, OpKind, ReplicaId, SwitchId, SwitchSeq,
    };
    pub use harmonia_verify::{check_history, ModelConfig, SpecModel};
    pub use harmonia_workload::ShardMap;
    pub use harmonia_workload::{KeySpace, Mix, WorkloadSpec, YcsbPreset};
}
