//! Property tests for the batched, zero-copy UDP data plane.
//!
//! Three invariants, each pinned by proptest:
//!
//! 1. **Batch = scalar.** The `send_batch`/`recv_batch` verbs deliver the
//!    same packet sequence as looping the scalar verbs — over the
//!    `sendmmsg`/`recvmmsg` wrapper, over its portable std fallback, and
//!    through a seeded [`FaultyTransport`] (whose default batch verbs loop
//!    the scalar ones, so the same seed makes the same loss/dup/reorder
//!    schedule either way).
//! 2. **Pool never aliases.** The receive [`BufferPool`] never hands out a
//!    buffer while any `Bytes` still references it, across arbitrary
//!    checkout/commit/hold/drop schedules.
//! 3. **The wrapper is faithful.** `mmsg::send_batch`/`recv_batch` and the
//!    std fallback move identical payload sequences.

// Wall-clock reads are deliberate here: live-cluster test: real-time deadlines.
#![allow(clippy::disallowed_methods)]

use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use harmonia::net::{
    AddrBook, BufferPool, FaultConfig, FaultCounters, FaultyTransport, Transport, UdpTransport,
};
use harmonia::types::{ClientId, NodeId, Packet, PacketBody, ReplicaId};
use proptest::prelude::*;

type Pkt = Packet<u64>;

fn pkt(n: u64) -> Pkt {
    Packet::new(
        NodeId::Client(ClientId(1)),
        NodeId::Replica(ReplicaId(0)),
        PacketBody::Protocol(n),
    )
}

/// Bind a (sender, receiver) UDP endpoint pair sharing one book, with the
/// receiver registered as Replica(0).
fn udp_pair(batched: bool) -> (UdpTransport<u64>, UdpTransport<u64>) {
    let book = Arc::new(AddrBook::new());
    let mut a = UdpTransport::bind(Arc::clone(&book)).unwrap();
    let mut b = UdpTransport::bind(Arc::clone(&book)).unwrap();
    a.set_batched(batched);
    b.set_batched(batched);
    book.register(NodeId::Replica(ReplicaId(0)), b.local_addr());
    (a, b)
}

/// Drain `n` packets from `b`, batched or scalar, tolerating loopback
/// delivery latency.
fn drain(b: &mut UdpTransport<u64>, n: usize, batched: bool) -> Vec<Pkt> {
    let mut got = Vec::with_capacity(n);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while got.len() < n && std::time::Instant::now() < deadline {
        if batched {
            let want = n - got.len();
            if b.recv_batch(&mut got, want) == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        } else if let Ok(p) = b.recv_timeout(Duration::from_millis(50)) {
            got.push(p);
        }
    }
    got
}

proptest! {
    /// Batched and scalar verbs move the same sequence over the wire, and
    /// the books agree.
    #[test]
    fn udp_batch_verbs_equal_scalar(values in prop::collection::vec(any::<u64>(), 1..60)) {
        // Scalar reference run.
        let (mut a, mut b) = udp_pair(false);
        for v in &values {
            a.send(NodeId::Replica(ReplicaId(0)), pkt(*v));
        }
        let scalar = drain(&mut b, values.len(), false);
        prop_assert_eq!(a.stats().sent, values.len() as u64);

        // Batched run (sendmmsg/recvmmsg on Linux, std fallback elsewhere).
        let (mut a2, mut b2) = udp_pair(true);
        let mut batch: Vec<(NodeId, Pkt)> = values
            .iter()
            .map(|v| (NodeId::Replica(ReplicaId(0)), pkt(*v)))
            .collect();
        a2.send_batch(&mut batch);
        prop_assert!(batch.is_empty());
        let batched = drain(&mut b2, values.len(), true);
        prop_assert_eq!(a2.stats().sent, values.len() as u64);

        // Loopback UDP between one socket pair delivers in order, so the
        // sequences match exactly, not just as multisets.
        prop_assert_eq!(&scalar, &batched);
        let expect: Vec<Pkt> = values.iter().map(|v| pkt(*v)).collect();
        prop_assert_eq!(&batched, &expect);
    }

    /// Through the fault adversary, the batch verbs (defaulted to scalar
    /// loops) replay the exact per-packet fault schedule: same seed, same
    /// delivered sequence, same counters.
    #[test]
    fn faulty_transport_batch_schedule_matches_scalar(
        values in prop::collection::vec(any::<u64>(), 1..80),
        seed in any::<u64>(),
        drop_p in 0.0f64..0.4,
        dup_p in 0.0f64..0.4,
        reorder_p in 0.0f64..0.4,
    ) {
        /// Records sends instead of delivering them — keeps the schedule
        /// comparison free of kernel timing.
        #[derive(Default)]
        struct Recorder {
            log: Vec<u64>,
        }
        impl Transport<u64> for Recorder {
            fn send(&mut self, _to: NodeId, p: Pkt) {
                if let PacketBody::Protocol(n) = p.body {
                    self.log.push(n);
                }
            }
            fn recv_timeout(&mut self, _t: Duration) -> Result<Pkt, harmonia::net::RecvError> {
                Err(harmonia::net::RecvError::TimedOut)
            }
        }

        let cfg = FaultConfig { drop_prob: drop_p, duplicate_prob: dup_p, reorder_prob: reorder_p };
        let run = |use_batch: bool| {
            let counters = Arc::new(FaultCounters::default());
            let mut t = FaultyTransport::new(Recorder::default(), cfg, seed, Arc::clone(&counters));
            if use_batch {
                let mut batch: Vec<(NodeId, Pkt)> = values
                    .iter()
                    .map(|v| (NodeId::Replica(ReplicaId(0)), pkt(*v)))
                    .collect();
                t.send_batch(&mut batch);
            } else {
                for v in &values {
                    t.send(NodeId::Replica(ReplicaId(0)), pkt(*v));
                }
            }
            let _ = t.recv_timeout(Duration::from_millis(1)); // flush a trailing hold
            (t.inner().log.clone(), counters.snapshot())
        };

        prop_assert_eq!(run(false), run(true));
    }

    /// The buffer pool never recycles a buffer while any `Bytes` cut from
    /// it is still alive: across arbitrary hold/drop schedules, a checkout
    /// never lands inside a held payload's backing buffer.
    #[test]
    fn pool_never_hands_out_aliased_buffers(ops in prop::collection::vec(0u8..4, 1..120)) {
        const BUF: usize = 256;
        let mut pool = BufferPool::new(BUF, 16);
        // Held payload slices + the backing-buffer range each pins.
        let mut held: Vec<(Bytes, std::ops::Range<usize>)> = Vec::new();
        for op in ops {
            match op {
                // Checkout + commit + hold a payload slice.
                0 | 1 => {
                    let buf = pool.checkout();
                    let base = buf.as_ptr() as usize;
                    for (_, range) in &held {
                        prop_assert!(
                            !range.contains(&base),
                            "pool handed out a buffer still referenced by a payload"
                        );
                    }
                    let frame = pool.commit(buf);
                    let payload = frame.slice(16..48);
                    held.push((payload, base..base + BUF));
                }
                // Checkout + commit, payload dropped immediately.
                2 => {
                    let buf = pool.checkout();
                    let base = buf.as_ptr() as usize;
                    for (_, range) in &held {
                        prop_assert!(!range.contains(&base));
                    }
                    drop(pool.commit(buf));
                }
                // Release the oldest held payload.
                _ => {
                    if !held.is_empty() {
                        held.remove(0);
                    }
                }
            }
        }
    }

    /// The mmsg wrapper's syscall path and its std fallback move identical
    /// payload sequences.
    #[test]
    fn mmsg_paths_are_equivalent(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..600), 1..50),
    ) {
        let run = |syscall_path: bool| -> Vec<Vec<u8>> {
            let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
            let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
            rx.set_nonblocking(true).unwrap();
            let to = rx.local_addr().unwrap();
            let msgs: Vec<(SocketAddr, &[u8])> =
                payloads.iter().map(|p| (to, &p[..])).collect();
            let report = if syscall_path {
                mmsg::send_batch(&tx, &msgs)
            } else {
                mmsg::fallback::send_batch(&tx, &msgs)
            };
            assert_eq!(report.sent, payloads.len());
            assert_eq!(report.errors, 0);

            let mut storage: Vec<Vec<u8>> = (0..payloads.len()).map(|_| vec![0u8; 1024]).collect();
            let mut lens = vec![0usize; payloads.len()];
            let mut out = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while out.len() < payloads.len() && std::time::Instant::now() < deadline {
                let mut bufs: Vec<&mut [u8]> = storage.iter_mut().map(|v| &mut v[..]).collect();
                let n = if syscall_path {
                    mmsg::recv_batch(&rx, &mut bufs, &mut lens).unwrap()
                } else {
                    mmsg::fallback::recv_batch(&rx, &mut bufs, &mut lens).unwrap()
                };
                for i in 0..n {
                    out.push(storage[i][..lens[i]].to_vec());
                }
                if n == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            out
        };

        let via_syscalls = run(true);
        let via_fallback = run(false);
        prop_assert_eq!(&via_syscalls, &payloads);
        prop_assert_eq!(&via_fallback, &payloads);
    }
}
