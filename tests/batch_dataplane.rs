//! Property tests for the batched, zero-copy, coalescing UDP data plane.
//!
//! Six invariants, each pinned by proptest:
//!
//! 1. **Batch = scalar.** The `send_batch`/`recv_batch` verbs deliver the
//!    same packet sequence as looping the scalar verbs — over the
//!    `sendmmsg`/`recvmmsg` wrapper, over its portable std fallback, and
//!    through a seeded [`FaultyTransport`] (whose default batch verbs loop
//!    the scalar ones, so the same seed makes the same loss/dup/reorder
//!    schedule either way).
//! 2. **Pool never aliases.** The receive [`BufferPool`] never hands out a
//!    buffer while any `Bytes` still references it, across arbitrary
//!    checkout/commit/hold/drop schedules.
//! 3. **The wrapper is faithful.** `mmsg::send_batch`/`recv_batch` and the
//!    std fallback move identical payload sequences.
//! 4. **Coalesced = per-frame.** GSO-style packing changes how many frames
//!    share a datagram, never which packets arrive or in what
//!    per-destination order — and under the fault adversary the *seeded
//!    schedule is identical* either way, because the wrapper's scalar loop
//!    flushes one frame per datagram underneath it (the per-datagram fault
//!    envelope [`FaultyTransport`] documents).
//! 5. **Salvage is exact.** A multi-frame datagram cut at any byte and
//!    padded with garbage never panics the frame iterator, and every frame
//!    wholly before the cut is still delivered.
//! 6. **The send pool never aliases.** A sealed datagram's payload buffer
//!    is never reused while that payload is still in flight, across
//!    arbitrary push/finish/drop schedules.

// Wall-clock reads are deliberate here: live-cluster test: real-time deadlines.
#![allow(clippy::disallowed_methods)]

use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use harmonia::net::{
    AddrBook, BufferPool, Coalescer, FaultConfig, FaultCounters, FaultyTransport, SealedDatagram,
    Transport, UdpTransport,
};
use harmonia::types::wire::{encode_frame_into, frames};
use harmonia::types::{ClientId, NodeId, Packet, PacketBody, ReplicaId};
use proptest::prelude::*;

type Pkt = Packet<u64>;

fn pkt(n: u64) -> Pkt {
    Packet::new(
        NodeId::Client(ClientId(1)),
        NodeId::Replica(ReplicaId(0)),
        PacketBody::Protocol(n),
    )
}

/// Bind a (sender, receiver) UDP endpoint pair sharing one book, with the
/// receiver registered as Replica(0).
fn udp_pair(batched: bool) -> (UdpTransport<u64>, UdpTransport<u64>) {
    let book = Arc::new(AddrBook::new());
    let mut a = UdpTransport::bind(Arc::clone(&book)).unwrap();
    let mut b = UdpTransport::bind(Arc::clone(&book)).unwrap();
    a.set_batched(batched);
    b.set_batched(batched);
    book.register(NodeId::Replica(ReplicaId(0)), b.local_addr());
    (a, b)
}

/// Drain `n` packets from `b`, batched or scalar, tolerating loopback
/// delivery latency.
fn drain(b: &mut UdpTransport<u64>, n: usize, batched: bool) -> Vec<Pkt> {
    let mut got = Vec::with_capacity(n);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while got.len() < n && std::time::Instant::now() < deadline {
        if batched {
            let want = n - got.len();
            if b.recv_batch(&mut got, want) == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        } else if let Ok(p) = b.recv_timeout(Duration::from_millis(50)) {
            got.push(p);
        }
    }
    got
}

proptest! {
    /// Batched and scalar verbs move the same sequence over the wire, and
    /// the books agree.
    #[test]
    fn udp_batch_verbs_equal_scalar(values in prop::collection::vec(any::<u64>(), 1..60)) {
        // Scalar reference run.
        let (mut a, mut b) = udp_pair(false);
        for v in &values {
            a.send(NodeId::Replica(ReplicaId(0)), pkt(*v));
        }
        let scalar = drain(&mut b, values.len(), false);
        prop_assert_eq!(a.stats().sent, values.len() as u64);

        // Batched run (sendmmsg/recvmmsg on Linux, std fallback elsewhere).
        let (mut a2, mut b2) = udp_pair(true);
        let mut batch: Vec<(NodeId, Pkt)> = values
            .iter()
            .map(|v| (NodeId::Replica(ReplicaId(0)), pkt(*v)))
            .collect();
        a2.send_batch(&mut batch);
        prop_assert!(batch.is_empty());
        let batched = drain(&mut b2, values.len(), true);
        prop_assert_eq!(a2.stats().sent, values.len() as u64);

        // Loopback UDP between one socket pair delivers in order, so the
        // sequences match exactly, not just as multisets.
        prop_assert_eq!(&scalar, &batched);
        let expect: Vec<Pkt> = values.iter().map(|v| pkt(*v)).collect();
        prop_assert_eq!(&batched, &expect);
    }

    /// Through the fault adversary, the batch verbs (defaulted to scalar
    /// loops) replay the exact per-packet fault schedule: same seed, same
    /// delivered sequence, same counters.
    #[test]
    fn faulty_transport_batch_schedule_matches_scalar(
        values in prop::collection::vec(any::<u64>(), 1..80),
        seed in any::<u64>(),
        drop_p in 0.0f64..0.4,
        dup_p in 0.0f64..0.4,
        reorder_p in 0.0f64..0.4,
    ) {
        /// Records sends instead of delivering them — keeps the schedule
        /// comparison free of kernel timing.
        #[derive(Default)]
        struct Recorder {
            log: Vec<u64>,
        }
        impl Transport<u64> for Recorder {
            fn send(&mut self, _to: NodeId, p: Pkt) {
                if let PacketBody::Protocol(n) = p.body {
                    self.log.push(n);
                }
            }
            fn recv_timeout(&mut self, _t: Duration) -> Result<Pkt, harmonia::net::RecvError> {
                Err(harmonia::net::RecvError::TimedOut)
            }
        }

        let cfg = FaultConfig { drop_prob: drop_p, duplicate_prob: dup_p, reorder_prob: reorder_p };
        let run = |use_batch: bool| {
            let counters = Arc::new(FaultCounters::default());
            let mut t = FaultyTransport::new(Recorder::default(), cfg, seed, Arc::clone(&counters));
            if use_batch {
                let mut batch: Vec<(NodeId, Pkt)> = values
                    .iter()
                    .map(|v| (NodeId::Replica(ReplicaId(0)), pkt(*v)))
                    .collect();
                t.send_batch(&mut batch);
            } else {
                for v in &values {
                    t.send(NodeId::Replica(ReplicaId(0)), pkt(*v));
                }
            }
            let _ = t.recv_timeout(Duration::from_millis(1)); // flush a trailing hold
            (t.inner().log.clone(), counters.snapshot())
        };

        prop_assert_eq!(run(false), run(true));
    }

    /// The buffer pool never recycles a buffer while any `Bytes` cut from
    /// it is still alive: across arbitrary hold/drop schedules, a checkout
    /// never lands inside a held payload's backing buffer.
    #[test]
    fn pool_never_hands_out_aliased_buffers(ops in prop::collection::vec(0u8..4, 1..120)) {
        const BUF: usize = 256;
        let mut pool = BufferPool::new(BUF, 16);
        // Held payload slices + the backing-buffer range each pins.
        let mut held: Vec<(Bytes, std::ops::Range<usize>)> = Vec::new();
        for op in ops {
            match op {
                // Checkout + commit + hold a payload slice.
                0 | 1 => {
                    let buf = pool.checkout();
                    let base = buf.as_ptr() as usize;
                    for (_, range) in &held {
                        prop_assert!(
                            !range.contains(&base),
                            "pool handed out a buffer still referenced by a payload"
                        );
                    }
                    let frame = pool.commit(buf);
                    let payload = frame.slice(16..48);
                    held.push((payload, base..base + BUF));
                }
                // Checkout + commit, payload dropped immediately.
                2 => {
                    let buf = pool.checkout();
                    let base = buf.as_ptr() as usize;
                    for (_, range) in &held {
                        prop_assert!(!range.contains(&base));
                    }
                    drop(pool.commit(buf));
                }
                // Release the oldest held payload.
                _ => {
                    if !held.is_empty() {
                        held.remove(0);
                    }
                }
            }
        }
    }

    /// GSO-style coalescing is invisible to the receiver: the same batch
    /// delivers the same packet sequence whether frames pack into full
    /// datagrams or ride one per datagram — only the datagram count and
    /// the frames-per-datagram packing differ.
    #[test]
    fn coalesced_delivery_equals_per_frame(values in prop::collection::vec(any::<u64>(), 1..60)) {
        let run = |coalesced: bool| {
            let (mut a, mut b) = udp_pair(true);
            a.set_coalesced(coalesced);
            b.set_coalesced(coalesced);
            let mut batch: Vec<(NodeId, Pkt)> = values
                .iter()
                .map(|v| (NodeId::Replica(ReplicaId(0)), pkt(*v)))
                .collect();
            a.send_batch(&mut batch);
            let got = drain(&mut b, values.len(), true);
            (got, a.stats().sent, a.stats().datagrams_sent)
        };

        let (per_frame, pf_sent, pf_datagrams) = run(false);
        let (coalesced, co_sent, co_datagrams) = run(true);
        let expect: Vec<Pkt> = values.iter().map(|v| pkt(*v)).collect();
        prop_assert_eq!(&per_frame, &expect);
        prop_assert_eq!(&coalesced, &expect);
        // Frame accounting is identical; only the datagram shape changes.
        prop_assert_eq!(pf_sent, values.len() as u64);
        prop_assert_eq!(co_sent, values.len() as u64);
        prop_assert_eq!(pf_datagrams, values.len() as u64);
        // One destination, tiny frames, 64 KiB budget: the whole batch
        // packs into a single datagram.
        prop_assert_eq!(co_datagrams, 1);
    }

    /// Under the fault adversary the coalescing knob is a no-op for the
    /// schedule: FaultyTransport's batch verbs loop the scalar path, which
    /// flushes one frame per datagram, so the same seed draws the same
    /// loss/dup/reorder decisions and delivers the same sequence whether
    /// the wrapped endpoint would coalesce or not — the per-datagram fault
    /// envelope documented on [`FaultyTransport`].
    #[test]
    fn fault_schedule_is_coalescing_invariant(
        values in prop::collection::vec(any::<u64>(), 1..60),
        seed in any::<u64>(),
    ) {
        let cfg = FaultConfig { drop_prob: 0.2, duplicate_prob: 0.2, reorder_prob: 0.2 };
        let run = |coalesced: bool| {
            let (mut a, mut b) = udp_pair(true);
            a.set_coalesced(coalesced);
            let counters = Arc::new(FaultCounters::default());
            let mut f = FaultyTransport::new(a, cfg, seed, Arc::clone(&counters));
            let mut batch: Vec<(NodeId, Pkt)> = values
                .iter()
                .map(|v| (NodeId::Replica(ReplicaId(0)), pkt(*v)))
                .collect();
            f.send_batch(&mut batch);
            let _ = f.recv_timeout(Duration::from_millis(1)); // flush a trailing hold
            let (dropped, duplicated, _) = counters.snapshot();
            let expect_n = values.len() as u64 - dropped + duplicated;
            let got = drain(&mut b, expect_n as usize, true);
            let stats = f.inner().stats();
            (got, counters.snapshot(), stats.sent, stats.datagrams_sent)
        };

        let (pf_got, pf_counts, pf_sent, pf_datagrams) = run(false);
        let (co_got, co_counts, co_sent, co_datagrams) = run(true);
        prop_assert_eq!(pf_counts, co_counts);
        prop_assert_eq!(&pf_got, &co_got);
        prop_assert_eq!(pf_sent, co_sent);
        // The scalar path under the wrapper never packs: every surviving
        // frame rode its own datagram in both runs.
        prop_assert_eq!(pf_datagrams, pf_sent);
        prop_assert_eq!(co_datagrams, co_sent);
    }

    /// A coalesced datagram cut at an arbitrary byte and padded with
    /// garbage never panics the frame iterator, and every frame wholly
    /// before the cut still decodes — a malformed tail cannot retroactively
    /// discard its valid neighbors.
    #[test]
    fn truncated_coalesced_datagrams_salvage_the_valid_prefix(
        values in prop::collection::vec(any::<u64>(), 1..20),
        cut_seed in any::<u32>(),
        tail in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut buf = BytesMut::new();
        let mut ends = Vec::with_capacity(values.len());
        for v in &values {
            encode_frame_into(&pkt(*v), &mut buf).unwrap();
            ends.push(buf.len());
        }
        let cut = cut_seed as usize % (buf.len() + 1); // 0..=len
        buf.truncate(cut);
        buf.extend_from_slice(&tail);
        let datagram = buf.freeze();

        let intact = ends.iter().take_while(|e| **e <= cut).count();
        let decoded: Vec<Result<Pkt, _>> = frames::<Pkt>(&datagram).collect();
        let oks: Vec<&Pkt> = decoded.iter().map_while(|r| r.as_ref().ok()).collect();
        // Every intact frame decodes, in order. Bytes past the cut are
        // adversarial: they *may* happen to parse as further frames (the
        // iterator cannot tell), but they can never corrupt the prefix.
        prop_assert!(oks.len() >= intact);
        for (i, v) in values.iter().take(intact).enumerate() {
            prop_assert_eq!(oks[i], &pkt(*v));
        }
        // Errors terminate the iterator: at most one, and only last.
        let errs = decoded.iter().filter(|r| r.is_err()).count();
        prop_assert!(errs <= 1);
        if errs == 1 {
            prop_assert!(decoded.last().unwrap().is_err());
        }
    }

    /// The send-side pool mirrors the receive pool's aliasing guarantee: a
    /// sealed datagram's buffer is never handed to a later datagram while
    /// the sealed payload is still in flight, across arbitrary
    /// push/finish/drop schedules.
    #[test]
    fn send_pool_never_aliases_inflight_payloads(ops in prop::collection::vec(0u8..5, 1..150)) {
        fn addr(port: u16) -> SocketAddr {
            SocketAddr::from(([127, 0, 0, 1], port))
        }
        /// Move freshly sealed payloads into `held`, refusing any whose
        /// backing range overlaps a payload still in flight.
        fn absorb(
            sealed: &mut Vec<SealedDatagram>,
            held: &mut Vec<(Bytes, std::ops::Range<usize>)>,
        ) -> bool {
            for d in sealed.drain(..) {
                let base = d.payload.as_ptr() as usize;
                let range = base..base + d.payload.len().max(1);
                if held
                    .iter()
                    .any(|(_, r)| range.start < r.end && r.start < range.end)
                {
                    return false;
                }
                held.push((d.payload, range));
            }
            true
        }

        // 64-byte budget over 12-byte frames: datagrams seal every ~5
        // pushes, so the op stream exercises plenty of recycling.
        let mut c = Coalescer::new(64, 8);
        let mut sealed: Vec<SealedDatagram> = Vec::new();
        let mut held: Vec<(Bytes, std::ops::Range<usize>)> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                // Push a frame (two destinations, round-robin).
                0..=2 => {
                    c.push(addr(9000 + (next % 2) as u16), &next, &mut sealed).unwrap();
                    next += 1;
                }
                // End of a flush: seal everything open.
                3 => c.finish(&mut sealed),
                // The transport finished sending the oldest payload.
                _ => {
                    if !held.is_empty() {
                        held.remove(0);
                    }
                }
            }
            prop_assert!(
                absorb(&mut sealed, &mut held),
                "send pool reused an in-flight payload buffer"
            );
        }
    }

    /// The mmsg wrapper's syscall path and its std fallback move identical
    /// payload sequences.
    #[test]
    fn mmsg_paths_are_equivalent(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..600), 1..50),
    ) {
        let run = |syscall_path: bool| -> Vec<Vec<u8>> {
            let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
            let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
            rx.set_nonblocking(true).unwrap();
            let to = rx.local_addr().unwrap();
            let msgs: Vec<(SocketAddr, &[u8])> =
                payloads.iter().map(|p| (to, &p[..])).collect();
            let report = if syscall_path {
                mmsg::send_batch(&tx, &msgs)
            } else {
                mmsg::fallback::send_batch(&tx, &msgs)
            };
            assert_eq!(report.sent, payloads.len());
            assert_eq!(report.errors, 0);

            let mut storage: Vec<Vec<u8>> = (0..payloads.len()).map(|_| vec![0u8; 1024]).collect();
            let mut lens = vec![0usize; payloads.len()];
            let mut out = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while out.len() < payloads.len() && std::time::Instant::now() < deadline {
                let mut bufs: Vec<&mut [u8]> = storage.iter_mut().map(|v| &mut v[..]).collect();
                let n = if syscall_path {
                    mmsg::recv_batch(&rx, &mut bufs, &mut lens).unwrap()
                } else {
                    mmsg::fallback::recv_batch(&rx, &mut bufs, &mut lens).unwrap()
                };
                for i in 0..n {
                    out.push(storage[i][..lens[i]].to_vec());
                }
                if n == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            out
        };

        let via_syscalls = run(true);
        let via_fallback = run(false);
        prop_assert_eq!(&via_syscalls, &payloads);
        prop_assert_eq!(&via_fallback, &payloads);
    }
}
