//! Shared helpers for the integration tests: build a simulated cluster,
//! drive closed-loop clients over it, and convert their records into
//! checker histories.

// Each integration-test binary compiles this module independently and uses
// a different subset of it; silence per-binary dead-code noise.
#![allow(dead_code)]

use std::collections::HashSet;

use bytes::Bytes;
use harmonia::prelude::*;
use harmonia::verify::{Action, OpRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use harmonia::core::client::OpSpec as Op;

/// A multi-client closed-loop workload description.
pub struct Scenario {
    pub cluster: ClusterConfig,
    pub clients: usize,
    pub ops_per_client: usize,
    pub keys: usize,
    pub write_ratio: f64,
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            cluster: ClusterConfig::default(),
            clients: 4,
            ops_per_client: 60,
            keys: 8,
            write_ratio: 0.4,
            seed: 1,
        }
    }
}

/// A multi-client closed-loop workload over a sharded (§6.3) deployment.
/// Clients address the spine switch; keys spread across every group.
pub struct ShardedScenario {
    pub cluster: ShardedClusterConfig,
    pub clients: usize,
    pub ops_per_client: usize,
    pub keys: usize,
    pub write_ratio: f64,
    pub seed: u64,
}

impl Default for ShardedScenario {
    fn default() -> Self {
        ShardedScenario {
            cluster: ShardedClusterConfig::default(),
            clients: 4,
            ops_per_client: 60,
            keys: 24,
            write_ratio: 0.4,
            seed: 1,
        }
    }
}

impl ShardedScenario {
    pub fn run(&self) -> Outcome {
        let world = build_sharded_world(&self.cluster);
        run_scenario_in(
            world,
            self.cluster.switch_addr(),
            self.cluster.write_replies(),
            self.clients,
            self.ops_per_client,
            self.keys,
            self.write_ratio,
            self.seed,
            |_| {},
        )
    }
}

/// What a scenario produced.
pub struct Outcome {
    /// Completed operations, checker-ready. If any operation ultimately
    /// failed (gave up after retries), every record touching that key is
    /// excluded — an abandoned write may or may not have taken effect, and
    /// the checker models only completed operations.
    pub records: Vec<OpRecord>,
    /// The post-run world, for state inspection.
    pub world: World<Msg>,
    /// Operations that gave up after all retries.
    pub incomplete: usize,
}

impl Scenario {
    pub fn run(&self) -> Outcome {
        let world = build_world(&self.cluster);
        self.run_in(world, |_| {})
    }

    /// Run with a hook that can adjust the world (network faults, scheduled
    /// failures) after the nodes are added but before time advances.
    pub fn run_in(&self, world: World<Msg>, prepare: impl FnOnce(&mut World<Msg>)) -> Outcome {
        run_scenario_in(
            world,
            self.cluster.switch_addr(),
            self.cluster.write_replies(),
            self.clients,
            self.ops_per_client,
            self.keys,
            self.write_ratio,
            self.seed,
            prepare,
        )
    }
}

/// Shared closed-loop driver for both deployment shapes: attach `clients`
/// clients addressing `switch`, run to quiescence, and collect
/// checker-ready records.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_in(
    mut world: World<Msg>,
    switch: NodeId,
    write_replies: usize,
    clients: usize,
    ops_per_client: usize,
    keys: usize,
    write_ratio: f64,
    seed: u64,
    prepare: impl FnOnce(&mut World<Msg>),
) -> Outcome {
    let mut plans = Vec::new();
    for c in 0..clients {
        let mut rng = SmallRng::seed_from_u64(seed * 1000 + c as u64);
        let plan: Vec<Op> = (0..ops_per_client)
            .map(|i| {
                let key = Bytes::from(format!("key-{}", rng.gen_range(0..keys)));
                if rng.gen_bool(write_ratio) {
                    Op::write(key, Bytes::from(format!("c{c}-v{i}")))
                } else {
                    Op::read(key)
                }
            })
            .collect();
        plans.push(plan);
    }
    for (c, plan) in plans.into_iter().enumerate() {
        let id = ClientId(10 + c as u32);
        let client = ClosedLoopClient::new(id, switch, plan)
            .with_write_replies(write_replies)
            .with_timeout(Duration::from_millis(3));
        world.add_node(NodeId::Client(id), Box::new(client));
    }
    prepare(&mut world);
    // Advance in chunks until every client finished AND every scheduled
    // control action (failovers, removals) has fired, bounded by a generous
    // 2-second horizon; then drain. Protocol timers would keep ticking
    // harmlessly but expensively, so there is no point simulating dead air —
    // but a control event scheduled after the clients finish must still run.
    let horizon = Instant::ZERO + Duration::from_secs(2);
    loop {
        let next = world.now() + Duration::from_millis(10);
        world.run_until(next);
        let all_done = (0..clients).all(|c| {
            world
                .actor::<ClosedLoopClient>(NodeId::Client(ClientId(10 + c as u32)))
                .is_some_and(|cl| cl.is_done())
        });
        if (all_done && world.pending_controls() == 0) || next >= horizon {
            break;
        }
    }
    // Let in-flight protocol traffic (commit broadcasts, chain DOWNs of the
    // final writes) settle so replica-state assertions see quiescence.
    let drain = world.now() + Duration::from_millis(20);
    world.run_until(drain);

    let mut records = Vec::new();
    let mut incomplete = 0;
    let mut poisoned_keys: HashSet<Bytes> = HashSet::new();
    for c in 0..clients {
        let id = NodeId::Client(ClientId(10 + c as u32));
        let client: &ClosedLoopClient = world.actor(id).expect("client exists");
        assert!(client.is_done(), "client {c} still has work");
        for r in &client.records {
            if !r.ok {
                incomplete += 1;
                poisoned_keys.insert(r.key.clone());
                continue;
            }
            records.push(OpRecord {
                client: 10 + c as u32,
                key: r.key.clone(),
                invoke: r.invoked.nanos(),
                complete: r.completed.nanos(),
                action: match r.kind {
                    OpKind::Write => Action::Write(r.value.clone().unwrap_or_default()),
                    OpKind::Read => Action::Read(r.result.clone()),
                },
            });
        }
    }
    records.retain(|r| !poisoned_keys.contains(&r.key));
    Outcome {
        records,
        world,
        incomplete,
    }
}

/// Assert the collected history is linearizable, with context on failure
/// (dumps the offending key's timeline for debugging).
pub fn assert_linearizable(records: Vec<OpRecord>, context: &str) {
    assert!(
        !records.is_empty(),
        "{context}: empty history proves nothing"
    );
    if let Err(v) = harmonia::verify::check_history(records.clone()) {
        if let harmonia::verify::Violation::NotLinearizable { key } = &v {
            let mut ops: Vec<&OpRecord> = records.iter().filter(|r| &r.key == key).collect();
            ops.sort_by_key(|r| r.invoke);
            eprintln!("--- history for {key:?} ---");
            for op in ops {
                eprintln!(
                    "client {} [{} .. {}] {:?}",
                    op.client, op.invoke, op.complete, op.action
                );
            }
        }
        panic!("{context}: {v}");
    }
}

/// Sharded deployments: after quiescence, every key's owning group must
/// agree on its value across that group's replicas (replicas of *other*
/// groups never see the key at all).
pub fn assert_sharded_converged(world: &World<Msg>, cluster: &ShardedClusterConfig, keys: usize) {
    use harmonia::core::ReplicaActor;
    let map = cluster.shard_map();
    for k in 0..keys {
        let key = format!("key-{k}");
        let group = map.shard_of_key(key.as_bytes()) as usize;
        let mut values = Vec::new();
        for r in cluster.group_members(group) {
            let actor: &ReplicaActor = world
                .actor(NodeId::Replica(r))
                .expect("group replica exists");
            values.push(actor.replica().local_value(key.as_bytes()));
        }
        let first = &values[0];
        assert!(
            values.iter().all(|v| v == first),
            "group {group} diverges on {key}: {values:?}"
        );
        // Shard isolation: no other group ever applied this key.
        for g in (0..cluster.groups).filter(|&g| g != group) {
            for r in cluster.group_members(g) {
                let actor: &ReplicaActor = world
                    .actor(NodeId::Replica(r))
                    .expect("other-group replica exists");
                assert_eq!(
                    actor.replica().local_value(key.as_bytes()),
                    None,
                    "replica {r:?} of group {g} holds {key}, owned by group {group}"
                );
            }
        }
    }
}

/// Every replica's applied state for every scenario key must agree after
/// quiescence.
pub fn assert_converged(world: &World<Msg>, cluster: &ClusterConfig, keys: usize) {
    use harmonia::core::ReplicaActor;
    for k in 0..keys {
        let key = format!("key-{k}");
        let mut values = Vec::new();
        for r in 0..cluster.replicas as u32 {
            let actor: &ReplicaActor = world
                .actor(NodeId::Replica(ReplicaId(r)))
                .expect("replica exists");
            values.push(actor.replica().local_value(key.as_bytes()));
        }
        let first = &values[0];
        assert!(
            values.iter().all(|v| v == first),
            "replicas diverge on {key}: {values:?}"
        );
    }
}
