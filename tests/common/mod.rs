//! Shared helpers for the integration tests: one scenario runner for every
//! deployment shape (unsharded is `groups(1)`), driving closed-loop clients
//! over a simulated cluster and converting their records into checker
//! histories.

// Each integration-test binary compiles this module independently and uses
// a different subset of it; silence per-binary dead-code noise.
#![allow(dead_code)]

use std::collections::HashSet;

use bytes::Bytes;
use harmonia::prelude::*;
use harmonia::verify::{Action, OpRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use harmonia::core::client::OpSpec as Op;

/// A multi-client closed-loop workload description over any deployment
/// shape. With `deployment.groups > 1`, clients address the spine switch
/// and keys spread across every group — same runner, same checker.
pub struct Scenario {
    pub deployment: DeploymentSpec,
    pub clients: usize,
    pub ops_per_client: usize,
    pub keys: usize,
    pub write_ratio: f64,
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            deployment: DeploymentSpec::new(),
            clients: 4,
            ops_per_client: 60,
            keys: 8,
            write_ratio: 0.4,
            seed: 1,
        }
    }
}

/// What a scenario produced.
pub struct Outcome {
    /// Completed operations, checker-ready. If any operation ultimately
    /// failed (gave up after retries), every record touching that key is
    /// excluded — an abandoned write may or may not have taken effect, and
    /// the checker models only completed operations.
    pub records: Vec<OpRecord>,
    /// The post-run world, for state inspection.
    pub world: World<Msg>,
    /// Operations that gave up after all retries.
    pub incomplete: usize,
}

/// Build the per-client plans a scenario describes (client `c` draws from
/// seed `seed * 1000 + c`). Shared with the driver-agnostic trait tests.
pub fn make_plans(
    clients: usize,
    ops_per_client: usize,
    keys: usize,
    write_ratio: f64,
    seed: u64,
) -> Vec<Vec<Op>> {
    (0..clients)
        .map(|c| {
            let mut rng = SmallRng::seed_from_u64(seed * 1000 + c as u64);
            (0..ops_per_client)
                .map(|i| {
                    let key = Bytes::from(format!("key-{}", rng.gen_range(0..keys)));
                    if rng.gen_bool(write_ratio) {
                        Op::write(key, Bytes::from(format!("c{c}-v{i}")))
                    } else {
                        Op::read(key)
                    }
                })
                .collect()
        })
        .collect()
}

/// Convert per-client recorded histories into checker-ready records,
/// excluding every key any abandoned operation touched. Returns the records
/// plus the abandoned-op count. History `i` is reported to the checker as
/// client id `10 + i` (matching the sim driver's node-id convention; the
/// checker only needs the ids to be distinct per history).
pub fn collect_records(histories: &[Vec<RecordedOp>]) -> (Vec<OpRecord>, usize) {
    let mut records = Vec::new();
    let mut incomplete = 0;
    let mut poisoned_keys: HashSet<Bytes> = HashSet::new();
    for (c, history) in histories.iter().enumerate() {
        for r in history {
            if !r.ok {
                incomplete += 1;
                poisoned_keys.insert(r.key.clone());
                continue;
            }
            records.push(OpRecord {
                client: 10 + c as u32,
                key: r.key.clone(),
                invoke: r.invoked.nanos(),
                complete: r.completed.nanos(),
                action: match r.kind {
                    OpKind::Write => Action::Write(r.value.clone().unwrap_or_default()),
                    OpKind::Read => Action::Read(r.result.clone()),
                },
            });
        }
    }
    records.retain(|r| !poisoned_keys.contains(&r.key));
    (records, incomplete)
}

impl Scenario {
    pub fn run(&self) -> Outcome {
        self.run_with(|_| {})
    }

    /// Run with a hook that can adjust the world (network faults, scheduled
    /// failures) before time advances. The switch and replicas exist when
    /// the hook runs; the closed-loop clients do NOT yet (they are added by
    /// `run_plans_with` afterwards) — shape their links by `NodeId`, which
    /// needs no node, rather than mutating client actors.
    pub fn run_with(&self, prepare: impl FnOnce(&mut World<Msg>)) -> Outcome {
        let mut sim = self.deployment.build_sim();
        prepare(sim.world_mut());
        let plans = make_plans(
            self.clients,
            self.ops_per_client,
            self.keys,
            self.write_ratio,
            self.seed,
        );
        let histories = sim.run_plans_with(plans, Duration::from_millis(3));
        let (records, incomplete) = collect_records(&histories);
        Outcome {
            records,
            world: sim.into_world(),
            incomplete,
        }
    }
}

/// Assert the collected history is linearizable, with context on failure
/// (dumps the offending key's timeline for debugging).
pub fn assert_linearizable(records: Vec<OpRecord>, context: &str) {
    assert_linearizable_traced(records, &[], context);
}

/// [`assert_linearizable`], with the deployment's packet-path trace
/// attached: when the Wing–Gong checker names a non-linearizable key, the
/// failure report carries every recorded trace hop of every request that
/// touched that key (from [`Cluster::trace_events`]) next to the op-level
/// history — the exact packet schedule that produced the violation.
pub fn assert_linearizable_traced(
    records: Vec<OpRecord>,
    traces: &[harmonia::obs::TraceEvent],
    context: &str,
) {
    assert!(
        !records.is_empty(),
        "{context}: empty history proves nothing"
    );
    if let Err(v) = harmonia::verify::check_history(records.clone()) {
        if let harmonia::verify::Violation::NotLinearizable { key } = &v {
            let mut ops: Vec<&OpRecord> = records.iter().filter(|r| &r.key == key).collect();
            ops.sort_by_key(|r| r.invoke);
            eprintln!("--- history for {key:?} ---");
            for op in ops {
                eprintln!(
                    "client {} [{} .. {}] {:?}",
                    op.client, op.invoke, op.complete, op.action
                );
            }
            if !traces.is_empty() {
                eprintln!("--- packet-path trace for {key:?} ---");
                eprint!("{}", harmonia::obs::dump_for_key(traces, key));
            }
        }
        panic!("{context}: {v}");
    }
}

/// After quiescence, every key's owning group must agree on its value
/// across that group's replicas — and in sharded deployments, replicas of
/// *other* groups must never have seen the key at all. With `groups(1)`
/// this is the classic all-replicas-converge check.
pub fn assert_converged(world: &World<Msg>, spec: &DeploymentSpec, keys: usize) {
    use harmonia::core::ReplicaActor;
    let map = spec.shard_map();
    for k in 0..keys {
        let key = format!("key-{k}");
        let group = map.shard_of_key(key.as_bytes()) as usize;
        let mut values = Vec::new();
        for r in spec.group_members(group) {
            let actor: &ReplicaActor = world
                .actor(NodeId::Replica(r))
                .expect("group replica exists");
            values.push(actor.replica().local_value(key.as_bytes()));
        }
        let first = &values[0];
        assert!(
            values.iter().all(|v| v == first),
            "group {group} diverges on {key}: {values:?}"
        );
        // Shard isolation: no other group ever applied this key.
        for g in (0..spec.groups).filter(|&g| g != group) {
            for r in spec.group_members(g) {
                let actor: &ReplicaActor = world
                    .actor(NodeId::Replica(r))
                    .expect("other-group replica exists");
                assert_eq!(
                    actor.replica().local_value(key.as_bytes()),
                    None,
                    "replica {r:?} of group {g} holds {key}, owned by group {group}"
                );
            }
        }
    }
}
