//! The unified `Deployment` API, exercised driver-agnostically: the same
//! scenario runs through `Box<dyn Cluster>` for all three drivers — the
//! deterministic sim, the live threaded driver, and the UDP datagram
//! driver — and every history passes the Wing–Gong checker. This is the
//! paper's drop-in claim in executable form — nothing in the harness below
//! knows which driver it is talking to.

mod common;

use common::{assert_linearizable_traced, collect_records, make_plans};
use harmonia::prelude::*;

/// All three drivers, behind the same trait object.
fn all_drivers(spec: &DeploymentSpec) -> Vec<(&'static str, Box<dyn Cluster>)> {
    vec![
        ("sim", Box::new(spec.build_sim())),
        ("live", Box::new(spec.spawn_live())),
        ("udp", Box::new(spec.spawn_udp())),
    ]
}

/// The same closed-loop scenario through `Box<dyn Cluster>` for every
/// driver: each history must be linearizable, and each switch must have
/// actually exercised the fast path.
#[test]
fn same_scenario_is_linearizable_through_all_drivers() {
    let spec = DeploymentSpec::new().protocol(ProtocolKind::Chain).seed(9);
    for (name, mut cluster) in all_drivers(&spec) {
        let plans = make_plans(3, 40, 8, 0.35, 9);
        let histories = cluster.run_plans(plans);
        assert_eq!(histories.len(), 3, "{name}: one history per plan");
        let (records, incomplete) = collect_records(&histories);
        assert_eq!(incomplete, 0, "{name}: ops gave up");
        // A failed check attaches the packet-path trace for the bad key.
        assert_linearizable_traced(
            records,
            &cluster.trace_events(),
            &format!("{name} driver via dyn Cluster"),
        );
        let stats = cluster.switch_stats().expect("switch is up");
        assert!(
            stats.reads_fast_path > 0,
            "{name}: fast path unused: {stats:?}"
        );
        assert_eq!(cluster.fast_path_enabled(), Some(true), "{name}");
        assert_eq!(
            cluster.switch_incarnation(),
            Some(SwitchId(1)),
            "{name}: no failover happened"
        );
    }
}

/// The synchronous KV surface behaves identically through the trait object,
/// on every driver.
#[test]
fn kv_client_round_trips_through_all_drivers() {
    let spec = DeploymentSpec::new();
    for (name, mut cluster) in all_drivers(&spec) {
        let mut client = cluster.client();
        assert_eq!(client.get(b"missing").unwrap(), None, "{name}");
        client.set(b"alpha", b"1").unwrap();
        client.set(b"alpha", b"2").unwrap();
        client.set(b"beta", b"3").unwrap();
        assert_eq!(
            client.get(b"alpha").unwrap().as_deref(),
            Some(&b"2"[..]),
            "{name}"
        );
        assert_eq!(
            client.get(b"beta").unwrap().as_deref(),
            Some(&b"3"[..]),
            "{name}"
        );
    }
}

/// The §5.3 failover vocabulary is the same on every driver: kill the
/// switch (service stops), replace it (normal path only), first own-id
/// completion re-arms the fast path.
#[test]
fn failover_vocabulary_is_uniform_across_drivers() {
    let spec = DeploymentSpec::new();
    for (name, mut cluster) in all_drivers(&spec) {
        {
            let mut client = cluster.client();
            client.set(b"warm", b"1").unwrap();
        }
        assert_eq!(cluster.fast_path_enabled(), Some(true), "{name}");

        cluster.kill_switch();
        assert_eq!(cluster.switch_stats(), None, "{name}: switch is down");
        {
            let mut client = cluster.client();
            assert!(
                client.get(b"warm").is_err(),
                "{name}: no switch, no service"
            );
        }

        cluster.replace_switch(SwitchId(2));
        assert_eq!(cluster.switch_incarnation(), Some(SwitchId(2)), "{name}");
        assert_eq!(
            cluster.fast_path_enabled(),
            Some(false),
            "{name}: fresh dirty set, fast path must be off"
        );
        {
            let mut client = cluster.client();
            assert_eq!(
                client.get(b"warm").unwrap().as_deref(),
                Some(&b"1"[..]),
                "{name}: normal path serves reads"
            );
            client.set(b"rearm", b"2").unwrap();
        }
        assert_eq!(
            cluster.fast_path_enabled(),
            Some(true),
            "{name}: first own-id completion re-arms"
        );
    }
}

/// The replica fail-stop/recovery vocabulary is the same on every driver:
/// kill a replica (the survivors reconfigure and keep serving), restart it
/// (the newcomer rejoins read-gated and catches up via snapshot + log state
/// transfer from a live peer), and data written before and during the
/// outage survives the round trip.
#[test]
fn replica_crash_and_recovery_is_uniform_across_drivers() {
    let spec = DeploymentSpec::new().protocol(ProtocolKind::Chain).seed(21);
    for (name, mut cluster) in all_drivers(&spec) {
        {
            let mut client = cluster.client();
            for i in 0..8 {
                client
                    .set(format!("pre-{i}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
        }

        cluster.kill_replica(ReplicaId(2));
        {
            let mut client = cluster.client();
            client.set(b"during", b"1").unwrap();
            assert_eq!(
                client.get(b"pre-3").unwrap().as_deref(),
                Some(&b"v3"[..]),
                "{name}: survivors must keep serving through the outage"
            );
        }

        cluster.restart_replica(ReplicaId(2));
        // Give the threaded drivers' background transfer a beat; the sim's
        // completes as the operations below advance virtual time.
        std::thread::sleep(std::time::Duration::from_millis(50));
        {
            let mut client = cluster.client();
            assert_eq!(
                client.get(b"pre-5").unwrap().as_deref(),
                Some(&b"v5"[..]),
                "{name}: pre-crash data must survive recovery"
            );
            assert_eq!(
                client.get(b"during").unwrap().as_deref(),
                Some(&b"1"[..]),
                "{name}: outage-window write must survive recovery"
            );
            client.set(b"after", b"2").unwrap();
            assert_eq!(
                client.get(b"after").unwrap().as_deref(),
                Some(&b"2"[..]),
                "{name}: recovered deployment must accept new writes"
            );
        }
        assert_eq!(
            cluster.switch_incarnation(),
            Some(SwitchId(1)),
            "{name}: replica churn must not disturb the switch incarnation"
        );
    }
}

/// A sharded deployment through the same trait object: groups(4) serves a
/// spread keyspace on all three drivers, with identical memory accounting.
#[test]
fn sharded_deployment_is_uniform_across_drivers() {
    let spec = DeploymentSpec::new().groups(4);
    let per_group = spec.table.stages * spec.table.slots_per_stage * spec.table.entry_bytes;
    for (name, mut cluster) in all_drivers(&spec) {
        {
            let mut client = cluster.client();
            for i in 0..40 {
                let key = format!("key-{i}");
                client
                    .set(key.as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            for i in 0..40 {
                let key = format!("key-{i}");
                assert_eq!(
                    client.get(key.as_bytes()).unwrap().as_deref(),
                    Some(format!("v{i}").as_bytes()),
                    "{name}: {key}"
                );
            }
        }
        assert_eq!(
            cluster.switch_memory_bytes(),
            Some(4 * per_group),
            "{name}: four equal dirty sets"
        );
        let mut groups_with_writes = 0;
        for g in 0..4 {
            let stats = cluster.group_stats(GroupId(g)).expect("hosted group");
            if stats.writes_forwarded > 0 {
                groups_with_writes += 1;
            }
        }
        assert!(
            groups_with_writes >= 3,
            "{name}: only {groups_with_writes}/4 groups saw writes"
        );
    }
}
