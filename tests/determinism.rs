//! Deterministic-replay regression tests.
//!
//! The simulator's contract (ROADMAP tier-1, `harmonia-sim` docs) is that a
//! fixed seed reproduces a run *exactly*: same client histories, same
//! metrics, same final state. Every debugging and bisection workflow on this
//! repo leans on that property, so it is locked in here — under an
//! adversarial network, where the RNG is exercised hardest (jitter draws,
//! drop/duplicate/reorder coin flips, random fast-path replica choice).

mod common;

use bytes::Bytes;
use common::Scenario;
use harmonia::prelude::*;
use rand::Rng;

fn adversarial(seed: u64) -> Scenario {
    Scenario {
        cluster: ClusterConfig {
            link: LinkConfig {
                base_latency: Duration::from_micros(5),
                jitter: Duration::from_micros(40),
                drop_prob: 0.01,
                duplicate_prob: 0.01,
                reorder_prob: 0.05,
                reorder_delay: Duration::from_micros(100),
            },
            seed,
            ..ClusterConfig::default()
        },
        clients: 4,
        ops_per_client: 50,
        keys: 6,
        write_ratio: 0.3,
        seed,
    }
}

/// Two closed-loop runs with the same seed produce bit-identical client
/// histories and identical metrics.
#[test]
fn closed_loop_replay_is_identical() {
    let run = |seed: u64| {
        let outcome = adversarial(seed).run();
        let mut histories = Vec::new();
        for c in 0..4u32 {
            let client: &ClosedLoopClient = outcome
                .world
                .actor(NodeId::Client(ClientId(10 + c)))
                .expect("client exists");
            histories.push(client.records.clone());
        }
        let counters: Vec<(&'static str, u64)> = outcome.world.metrics().counters_sorted();
        (histories, counters)
    };

    let (hist_a, counters_a) = run(42);
    let (hist_b, counters_b) = run(42);
    assert_eq!(hist_a, hist_b, "same seed must replay identical histories");
    assert_eq!(
        counters_a, counters_b,
        "same seed must replay identical metrics"
    );
    assert_eq!(
        hist_a.iter().map(Vec::len).sum::<usize>(),
        4 * 50,
        "every client completed its full plan"
    );
    assert!(
        counters_a.iter().any(|&(n, v)| n == "net.dropped" && v > 0),
        "the adversarial network actually consulted the RNG: {counters_a:?}"
    );
}

/// A different seed actually changes the run (guards against the replay test
/// passing vacuously because the RNG is never consulted).
#[test]
fn different_seed_diverges() {
    let counters = |seed: u64| {
        adversarial(seed)
            .run()
            .world
            .metrics()
            .counters_sorted()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect::<Vec<_>>()
    };
    assert_ne!(
        counters(1),
        counters(2),
        "an adversarial network must consult the seeded RNG"
    );
}

/// Open-loop generators are deterministic too: same seed, same counter
/// values and same latency-histogram shape.
#[test]
fn open_loop_replay_is_identical() {
    let run = || {
        let config = ClusterConfig {
            seed: 7,
            ..ClusterConfig::default()
        };
        let mut world = build_world(&config);
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..64u32)));
            if rng.gen_bool(0.05) {
                OpSpec::write(key, Bytes::from_static(b"v"))
            } else {
                OpSpec::read(key)
            }
        });
        add_open_loop_client(
            &mut world,
            &config,
            ClientId(1),
            200_000.0,
            Duration::from_millis(10),
            source,
        );
        world.run_until(Instant::ZERO + Duration::from_millis(20));

        let counters: Vec<(String, u64)> = world
            .metrics()
            .counters_sorted()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        let hist = world
            .metrics()
            .histogram("client.read.latency")
            .expect("reads recorded latency");
        (counters, hist.count(), hist.mean(), hist.percentile(0.99))
    };

    let a = run();
    let b = run();
    assert_eq!(a, b, "open-loop replay must be exact");
    assert!(a.1 > 0, "the run recorded read latencies");
}
