//! Deterministic-replay regression tests.
//!
//! The simulator's contract (ROADMAP tier-1, `harmonia-sim` docs) is that a
//! fixed seed reproduces a run *exactly*: same client histories, same
//! metrics, same final state. Every debugging and bisection workflow on this
//! repo leans on that property, so it is locked in here — under an
//! adversarial network, where the RNG is exercised hardest (jitter draws,
//! drop/duplicate/reorder coin flips, random fast-path replica choice).
//!
//! The `DeploymentSpec` redesign adds a second contract: `groups(1)` must
//! be *bit-identical* to the pre-redesign unsharded `build_world` assembly,
//! so migrating a seed-pinned experiment to the new API can never change
//! its results. Locked by the two `groups1_*` tests below.

mod common;

use bytes::Bytes;
use common::Scenario;
use harmonia::prelude::*;
use rand::Rng;

fn adversarial(seed: u64) -> Scenario {
    Scenario {
        deployment: adversarial_spec(seed),
        clients: 4,
        ops_per_client: 50,
        keys: 6,
        write_ratio: 0.3,
        seed,
    }
}

/// Two closed-loop runs with the same seed produce bit-identical client
/// histories and identical metrics.
#[test]
fn closed_loop_replay_is_identical() {
    let run = |seed: u64| {
        let outcome = adversarial(seed).run();
        let mut histories = Vec::new();
        for c in 0..4u32 {
            let client: &ClosedLoopClient = outcome
                .world
                .actor(NodeId::Client(ClientId(10 + c)))
                .expect("client exists");
            histories.push(client.records.clone());
        }
        let counters: Vec<(&'static str, u64)> = outcome.world.metrics().counters_sorted();
        (histories, counters)
    };

    let (hist_a, counters_a) = run(42);
    let (hist_b, counters_b) = run(42);
    assert_eq!(hist_a, hist_b, "same seed must replay identical histories");
    assert_eq!(
        counters_a, counters_b,
        "same seed must replay identical metrics"
    );
    assert_eq!(
        hist_a.iter().map(Vec::len).sum::<usize>(),
        4 * 50,
        "every client completed its full plan"
    );
    assert!(
        counters_a.iter().any(|&(n, v)| n == "net.dropped" && v > 0),
        "the adversarial network actually consulted the RNG: {counters_a:?}"
    );
}

/// Observability rides the same contract: two same-seed sim runs render
/// bit-identical [`ObsSnapshot`]s (both exporters, byte for byte) and
/// identical trace timelines. This is what makes a snapshot diff a valid
/// bisection tool — any byte that differs is caused by the change under
/// test, not by the telemetry.
#[test]
fn obs_snapshot_replay_is_identical() {
    let run = |seed: u64| {
        let mut sim = adversarial_spec(seed).build_sim();
        let _ = sim.run_plans(common::make_plans(4, 50, 6, 0.3, seed));
        let snap = sim.obs_snapshot();
        (
            harmonia::obs::json_text(&snap),
            harmonia::obs::prometheus_text(&snap),
            sim.trace_events(),
        )
    };
    let (json_a, prom_a, traces_a) = run(42);
    let (json_b, prom_b, traces_b) = run(42);
    assert_eq!(json_a, json_b, "same seed must render identical JSON");
    assert_eq!(prom_a, prom_b, "same seed must render identical Prometheus");
    assert_eq!(traces_a, traces_b, "same seed must trace identically");
    assert!(
        !traces_a.is_empty(),
        "the comparison actually traced something"
    );
    assert!(
        json_a.contains("\"driver\": \"sim\""),
        "snapshot came from the sim driver"
    );
}

/// A different seed actually changes the run (guards against the replay test
/// passing vacuously because the RNG is never consulted).
#[test]
fn different_seed_diverges() {
    let counters = |seed: u64| {
        adversarial(seed)
            .run()
            .world
            .metrics()
            .counters_sorted()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect::<Vec<_>>()
    };
    assert_ne!(
        counters(1),
        counters(2),
        "an adversarial network must consult the seeded RNG"
    );
}

/// Open-loop generators are deterministic too: same seed, same counter
/// values and same latency-histogram shape.
#[test]
fn open_loop_replay_is_identical() {
    let run = || {
        let mut sim = DeploymentSpec::new().seed(7).build_sim();
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..64u32)));
            if rng.gen_bool(0.05) {
                OpSpec::write(key, Bytes::from_static(b"v"))
            } else {
                OpSpec::read(key)
            }
        });
        sim.add_open_loop_client(ClientId(1), 200_000.0, Duration::from_millis(10), source);
        sim.run_until(Instant::ZERO + Duration::from_millis(20));

        let counters: Vec<(String, u64)> = sim
            .world()
            .metrics()
            .counters_sorted()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        let hist = sim
            .world()
            .metrics()
            .histogram("client.read.latency")
            .expect("reads recorded latency");
        (counters, hist.count(), hist.mean(), hist.percentile(0.99))
    };

    let a = run();
    let b = run();
    assert_eq!(a, b, "open-loop replay must be exact");
    assert!(a.1 > 0, "the run recorded read latencies");
}

/// Assemble the pre-redesign unsharded world exactly the way the old
/// `build_world(&ClusterConfig)` did: explicit single-group switch actor
/// plus one `ReplicaActor` per replica, in the same insertion order. The
/// redesign collapsed that path into the sharded one — this is the
/// reference it must keep matching.
fn pre_redesign_world(spec: &DeploymentSpec) -> World<Msg> {
    use harmonia::core::switch_actor::{SwitchActor, SwitchActorConfig, SwitchMode};
    use harmonia::core::ReplicaActor;
    use harmonia::replication::build_replica;

    assert_eq!(spec.groups, 1, "the old path was single-group only");
    let mut world = World::new(WorldConfig {
        seed: spec.seed,
        network: NetworkModel::uniform(spec.link),
    });
    world.add_node(
        NodeId::Switch(SwitchId(1)),
        Box::new(SwitchActor::new(SwitchActorConfig {
            incarnation: SwitchId(1),
            mode: if spec.harmonia {
                SwitchMode::Harmonia
            } else {
                SwitchMode::Baseline
            },
            protocol: spec.protocol,
            replicas: spec.replicas,
            table: spec.table,
            sweep_interval: spec.sweep_interval,
        })),
    );
    for i in 0..spec.replicas as u32 {
        let group = GroupConfig {
            protocol: spec.protocol,
            me: ReplicaId(i),
            members: (0..spec.replicas as u32).map(ReplicaId).collect(),
            harmonia: spec.harmonia,
            active_switch: SwitchId(1),
            sync_interval: spec.sync_interval,
        };
        world.add_node(
            NodeId::Replica(ReplicaId(i)),
            Box::new(ReplicaActor::new(build_replica(group), spec.costs)),
        );
    }
    world
}

/// Drive the same adversarial closed-loop workload over an arbitrary
/// pre-built world and return (histories, counters).
type RunFingerprint = (Vec<Vec<RecordedOp>>, Vec<(String, u64)>);

fn fingerprint(mut world: World<Msg>, seed: u64) -> RunFingerprint {
    let plans = common::make_plans(4, 50, 6, 0.3, seed);
    for (c, plan) in plans.into_iter().enumerate() {
        let id = ClientId(10 + c as u32);
        let client = ClosedLoopClient::new(id, NodeId::Switch(SwitchId(1)), plan)
            .with_write_replies(1)
            .with_timeout(Duration::from_millis(3));
        world.add_node(NodeId::Client(id), Box::new(client));
    }
    let horizon = Instant::ZERO + Duration::from_secs(2);
    loop {
        let next = world.now() + Duration::from_millis(10);
        world.run_until(next);
        let all_done = (0..4u32).all(|c| {
            world
                .actor::<ClosedLoopClient>(NodeId::Client(ClientId(10 + c)))
                .is_some_and(|cl| cl.is_done())
        });
        if all_done || next >= horizon {
            break;
        }
    }
    let drain = world.now() + Duration::from_millis(20);
    world.run_until(drain);
    let histories = (0..4u32)
        .map(|c| {
            world
                .actor::<ClosedLoopClient>(NodeId::Client(ClientId(10 + c)))
                .expect("client exists")
                .records
                .clone()
        })
        .collect();
    let counters = world
        .metrics()
        .counters_sorted()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    (histories, counters)
}

fn adversarial_spec(seed: u64) -> DeploymentSpec {
    DeploymentSpec::new()
        .link(LinkConfig {
            base_latency: Duration::from_micros(5),
            jitter: Duration::from_micros(40),
            drop_prob: 0.01,
            duplicate_prob: 0.01,
            reorder_prob: 0.05,
            reorder_delay: Duration::from_micros(100),
        })
        .seed(seed)
}

/// The redesign's equivalence contract: `groups(1)` through the unified
/// (internally sharded) assembly produces bit-identical histories and
/// metrics to the pre-redesign unsharded `build_world` assembly, same seed,
/// under an adversarial network that exercises the RNG hard.
#[test]
fn groups1_matches_pre_redesign_unsharded_build() {
    let spec = adversarial_spec(42);
    let old = fingerprint(pre_redesign_world(&spec), 42);
    let new = fingerprint(spec.build_sim().into_world(), 42);
    assert_eq!(
        old.0, new.0,
        "groups(1) must replay the old unsharded histories bit-for-bit"
    );
    assert_eq!(old.1, new.1, "and the metrics must match exactly");
    assert!(
        old.0.iter().map(Vec::len).sum::<usize>() > 0,
        "the comparison actually ran a workload"
    );
}

/// A second seed through the pre-redesign reference, so the equivalence is
/// not a single-trajectory fluke (the deprecated `build_world` shim this
/// used to exercise was removed in 0.x; the hand-assembled reference above
/// is the contract that outlives it).
#[test]
fn groups1_matches_pre_redesign_unsharded_build_second_seed() {
    let spec = adversarial_spec(43);
    let old = fingerprint(pre_redesign_world(&spec), 43);
    let new = fingerprint(spec.build_sim().into_world(), 43);
    assert_eq!(old.0, new.0);
    assert_eq!(old.1, new.1);
}
