//! End-to-end linearizability: every protocol, with and without Harmonia,
//! under clean and adversarial networks, checked with the Wing–Gong
//! checker. This is the executable form of the paper's Theorem 1.

mod common;

use common::{assert_converged, assert_linearizable, Scenario};
use harmonia::prelude::*;

fn cluster(protocol: ProtocolKind, harmonia: bool) -> DeploymentSpec {
    DeploymentSpec::new()
        .protocol(protocol)
        .harmonia(harmonia)
        .replicas(3)
}

fn check(protocol: ProtocolKind, harmonia: bool, seed: u64, context: &str) {
    let scenario = Scenario {
        deployment: cluster(protocol, harmonia),
        seed,
        ..Scenario::default()
    };
    let outcome = scenario.run();
    assert_eq!(outcome.incomplete, 0, "{context}: ops gave up");
    assert_linearizable(outcome.records, context);
    assert_converged(&outcome.world, &scenario.deployment, scenario.keys);
}

#[test]
fn pb_baseline_is_linearizable() {
    check(ProtocolKind::PrimaryBackup, false, 11, "PB baseline");
}

#[test]
fn pb_harmonia_is_linearizable() {
    check(ProtocolKind::PrimaryBackup, true, 12, "Harmonia(PB)");
}

#[test]
fn chain_baseline_is_linearizable() {
    check(ProtocolKind::Chain, false, 13, "CR baseline");
}

#[test]
fn chain_harmonia_is_linearizable() {
    check(ProtocolKind::Chain, true, 14, "Harmonia(CR)");
}

#[test]
fn craq_is_linearizable() {
    check(ProtocolKind::Craq, false, 15, "CRAQ");
}

#[test]
fn vr_baseline_is_linearizable() {
    check(ProtocolKind::Vr, false, 16, "VR baseline");
}

#[test]
fn vr_harmonia_is_linearizable() {
    check(ProtocolKind::Vr, true, 17, "Harmonia(VR)");
}

#[test]
fn nopaxos_baseline_is_linearizable() {
    check(ProtocolKind::Nopaxos, false, 18, "NOPaxos baseline");
}

#[test]
fn nopaxos_harmonia_is_linearizable() {
    check(ProtocolKind::Nopaxos, true, 19, "Harmonia(NOPaxos)");
}

/// §5.2: consistency must hold "even when the network can arbitrarily delay
/// or reorder packets". The fault-injection sweep below runs every
/// protocol, with and without Harmonia, under three adversaries — lossy,
/// reordering, and loss+reordering — and feeds each recorded history
/// through `harmonia-verify`'s Wing–Gong linearizability checker.
///
/// One assumption is preserved from the paper's deployment model:
/// replica↔replica channels are reliable FIFO (they are TCP connections in
/// any real chain/PB deployment, and the §5.2 lazy-scrub argument — "writes
/// are processed in order" — depends on it: losing a chain DOWN message
/// while later writes survive would leave an applied-but-never-committable
/// write that the dirty set no longer tracks). Client↔switch and
/// switch↔replica paths get the adversary. NOPaxos additionally keeps its
/// own documented envelope: its gap recovery covers follower-side multicast
/// loss (the leader's copy must arrive, DESIGN.md §6) and OUM assumes the
/// sequencer→replica fan-out is order-preserving, so its losses go on the
/// switch→follower links and its reordering on the client↔switch path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fault {
    /// Drops and duplicates, order preserved.
    Lossy,
    /// Jitter and explicit reordering, nothing lost.
    Reordering,
    /// Both at once (the original adversarial configuration).
    LossAndReorder,
}

const ALL_FAULTS: [Fault; 3] = [Fault::Lossy, Fault::Reordering, Fault::LossAndReorder];

impl Fault {
    fn link(self) -> LinkConfig {
        let ideal = LinkConfig::ideal(Duration::from_micros(5));
        match self {
            Fault::Lossy => LinkConfig {
                drop_prob: 0.02,
                duplicate_prob: 0.01,
                ..ideal
            },
            Fault::Reordering => LinkConfig {
                jitter: Duration::from_micros(40),
                reorder_prob: 0.05,
                reorder_delay: Duration::from_micros(100),
                ..ideal
            },
            Fault::LossAndReorder => LinkConfig {
                jitter: Duration::from_micros(40),
                drop_prob: 0.01,
                duplicate_prob: 0.01,
                reorder_prob: 0.05,
                reorder_delay: Duration::from_micros(100),
                ..ideal
            },
        }
    }

    fn loses(self) -> bool {
        matches!(self, Fault::Lossy | Fault::LossAndReorder)
    }

    fn reorders(self) -> bool {
        matches!(self, Fault::Reordering | Fault::LossAndReorder)
    }
}

/// Restore reliable FIFO channels between replicas (both directions).
fn reliable_intra_replica_links(world: &mut World<Msg>, replicas: usize) {
    let ideal = LinkConfig::ideal(Duration::from_micros(5));
    for a in 0..replicas as u32 {
        for b in 0..replicas as u32 {
            if a != b {
                world.network_mut().set_link(
                    NodeId::Replica(ReplicaId(a)),
                    NodeId::Replica(ReplicaId(b)),
                    ideal,
                );
            }
        }
    }
}

fn check_fault(protocol: ProtocolKind, harmonia: bool, fault: Fault, seed: u64) {
    let context = format!("{protocol:?} harmonia={harmonia} under {fault:?}");
    let mut spec = cluster(protocol, harmonia).seed(seed);
    let nopaxos = protocol == ProtocolKind::Nopaxos;
    if !nopaxos {
        spec.link = fault.link();
    }
    let replicas = spec.replicas;
    let clients = 3;
    let scenario = Scenario {
        deployment: spec.clone(),
        clients,
        ops_per_client: 50,
        keys: 6,
        write_ratio: 0.35,
        seed,
    };
    let outcome = scenario.run_with(|w| {
        if nopaxos {
            // Respect the OUM envelope: losses hit the switch→follower
            // multicast legs; reordering hits the client↔switch path.
            if fault.loses() {
                for follower in [1u32, 2] {
                    w.network_mut().set_link(
                        spec.switch_addr(),
                        NodeId::Replica(ReplicaId(follower)),
                        LinkConfig {
                            drop_prob: 0.05,
                            ..LinkConfig::ideal(Duration::from_micros(5))
                        },
                    );
                }
            }
            if fault.reorders() {
                let reorder = LinkConfig {
                    jitter: Duration::from_micros(40),
                    reorder_prob: 0.05,
                    reorder_delay: Duration::from_micros(100),
                    ..LinkConfig::ideal(Duration::from_micros(5))
                };
                for c in 0..clients as u32 {
                    let client = NodeId::Client(ClientId(10 + c));
                    w.network_mut()
                        .set_link(client, spec.switch_addr(), reorder);
                    w.network_mut()
                        .set_link(spec.switch_addr(), client, reorder);
                }
            }
        } else {
            reliable_intra_replica_links(w, replicas);
        }
    });
    assert_linearizable(outcome.records, &context);
}

/// One sweep entry per protocol × mode; each runs all three fault profiles.
fn fault_sweep(protocol: ProtocolKind, harmonia: bool, base_seed: u64) {
    for (i, fault) in ALL_FAULTS.into_iter().enumerate() {
        check_fault(protocol, harmonia, fault, base_seed + i as u64);
    }
}

#[test]
fn fault_sweep_pb_baseline() {
    fault_sweep(ProtocolKind::PrimaryBackup, false, 300);
}

#[test]
fn fault_sweep_pb_harmonia() {
    fault_sweep(ProtocolKind::PrimaryBackup, true, 310);
}

#[test]
fn fault_sweep_chain_baseline() {
    fault_sweep(ProtocolKind::Chain, false, 320);
}

#[test]
fn fault_sweep_chain_harmonia() {
    fault_sweep(ProtocolKind::Chain, true, 330);
}

#[test]
fn fault_sweep_craq() {
    fault_sweep(ProtocolKind::Craq, false, 340);
}

#[test]
fn fault_sweep_vr_baseline() {
    fault_sweep(ProtocolKind::Vr, false, 350);
}

#[test]
fn fault_sweep_vr_harmonia() {
    fault_sweep(ProtocolKind::Vr, true, 360);
}

#[test]
fn fault_sweep_nopaxos_baseline() {
    fault_sweep(ProtocolKind::Nopaxos, false, 370);
}

#[test]
fn fault_sweep_nopaxos_harmonia() {
    fault_sweep(ProtocolKind::Nopaxos, true, 380);
}

/// Replica churn as its own adversary dimension (protocol × churn × loss):
/// mid-workload, the third replica fail-stops (its group shrinks to the
/// survivors) and later rejoins — read-gated, catching up via snapshot +
/// log state transfer from a live peer — while closed-loop clients keep
/// issuing operations. Optionally the Lossy profile runs underneath at the
/// same time. Every per-key history goes through the Wing–Gong checker,
/// and the rejoined replica must actually have finished its transfer.
/// NOPaxos keeps its documented loss envelope (switch→follower legs only).
fn check_churn(protocol: ProtocolKind, harmonia: bool, loss: Option<Fault>, seed: u64) {
    let context = format!("{protocol:?} harmonia={harmonia} churn loss={loss:?}");
    let mut spec = cluster(protocol, harmonia).seed(seed);
    let nopaxos = protocol == ProtocolKind::Nopaxos;
    if let Some(fault) = loss {
        if !nopaxos {
            spec.link = fault.link();
        }
    }
    let replicas = spec.replicas;
    let scenario = Scenario {
        deployment: spec.clone(),
        clients: 3,
        ops_per_client: 60,
        keys: 6,
        write_ratio: 0.35,
        seed,
    };
    let spec_for_world = spec.clone();
    let outcome = scenario.run_with(|w| {
        reliable_intra_replica_links(w, replicas);
        if nopaxos && loss.is_some() {
            // Respect the OUM envelope: losses only on the
            // switch→follower multicast legs.
            for follower in [1u32, 2] {
                w.network_mut().set_link(
                    spec_for_world.switch_addr(),
                    NodeId::Replica(ReplicaId(follower)),
                    LinkConfig {
                        drop_prob: 0.05,
                        ..LinkConfig::ideal(Duration::from_micros(5))
                    },
                );
            }
        }
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        schedule_replica_removal(
            w,
            t(3),
            &spec_for_world,
            spec_for_world.switch_addr(),
            ReplicaId(2),
        );
        schedule_replica_recovery(
            w,
            t(8),
            &spec_for_world,
            spec_for_world.switch_addr(),
            ReplicaId(2),
        );
    });
    assert_linearizable(outcome.records, &context);
    // The newcomer really recovered: its transfer finished and it holds
    // transferred state, not an empty store.
    let actor: &harmonia::core::ReplicaActor = outcome
        .world
        .actor(NodeId::Replica(ReplicaId(2)))
        .expect("rejoined replica exists");
    assert!(
        !actor.is_recovering(),
        "{context}: transfer still in flight"
    );
    assert!(
        actor.replica().applied_seq() > SwitchSeq::ZERO,
        "{context}: rejoined replica applied nothing"
    );
}

/// One churn entry per protocol × mode; each runs clean and under loss.
fn churn_sweep(protocol: ProtocolKind, harmonia: bool, base_seed: u64) {
    for (i, loss) in [None, Some(Fault::Lossy)].into_iter().enumerate() {
        check_churn(protocol, harmonia, loss, base_seed + i as u64);
    }
}

#[test]
fn churn_sweep_pb_baseline() {
    churn_sweep(ProtocolKind::PrimaryBackup, false, 500);
}

#[test]
fn churn_sweep_pb_harmonia() {
    churn_sweep(ProtocolKind::PrimaryBackup, true, 510);
}

#[test]
fn churn_sweep_chain_baseline() {
    churn_sweep(ProtocolKind::Chain, false, 520);
}

#[test]
fn churn_sweep_chain_harmonia() {
    churn_sweep(ProtocolKind::Chain, true, 530);
}

#[test]
fn churn_sweep_craq() {
    churn_sweep(ProtocolKind::Craq, false, 540);
}

#[test]
fn churn_sweep_vr_baseline() {
    churn_sweep(ProtocolKind::Vr, false, 550);
}

#[test]
fn churn_sweep_vr_harmonia() {
    churn_sweep(ProtocolKind::Vr, true, 560);
}

#[test]
fn churn_sweep_nopaxos_baseline() {
    churn_sweep(ProtocolKind::Nopaxos, false, 570);
}

#[test]
fn churn_sweep_nopaxos_harmonia() {
    churn_sweep(ProtocolKind::Nopaxos, true, 580);
}

/// §5.2's other race: the control-plane stale-entry sweep fires while
/// writes are still propagating. Chain hops are slowed to 300 µs so every
/// write stays pending across multiple 50 µs sweep periods, and the
/// switch→replica legs reorder so some stamped writes arrive out of order
/// at the head, get rejected, and leave stray dirty entries for the sweep
/// to reclaim. The sweep must collect only those strays — never a live
/// pending write — or a fast-path read would reach a replica holding
/// uncommitted data, which the checker would flag.
#[test]
fn sweep_eviction_races_slow_write_completion() {
    let spec = cluster(ProtocolKind::Chain, true)
        .seed(401)
        .sweep_interval(Some(Duration::from_micros(50)));
    let scenario = Scenario {
        deployment: spec.clone(),
        clients: 4,
        ops_per_client: 60,
        keys: 8,
        write_ratio: 0.4,
        seed: 401,
    };
    let outcome = scenario.run_with(|w| {
        // Slow, reliable FIFO chain: writes stay in flight ~0.6 ms.
        let slow = LinkConfig::ideal(Duration::from_micros(300));
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    w.network_mut().set_link(
                        NodeId::Replica(ReplicaId(a)),
                        NodeId::Replica(ReplicaId(b)),
                        slow,
                    );
                }
            }
        }
        // Reordering on the switch→replica legs: stamped writes can pass
        // each other, so the head rejects the late one (stray entry).
        let reorder = LinkConfig {
            jitter: Duration::from_micros(30),
            reorder_prob: 0.15,
            reorder_delay: Duration::from_micros(120),
            ..LinkConfig::ideal(Duration::from_micros(5))
        };
        for r in 0..3u32 {
            w.network_mut()
                .set_link(spec.switch_addr(), NodeId::Replica(ReplicaId(r)), reorder);
        }
    });
    assert_linearizable(outcome.records, "sweep vs slow completion");
    assert_converged(&outcome.world, &scenario.deployment, scenario.keys);
    // The race must actually have been exercised: the sweep reclaimed stray
    // entries while fast-path reads were being served.
    let swept = outcome.world.metrics().counter("switch.swept");
    assert!(swept > 0, "no stale entries were ever swept");
    let sw: &SwitchActor = outcome
        .world
        .actor(scenario.deployment.switch_addr())
        .expect("switch");
    assert!(
        sw.stats().reads_fast_path > 0,
        "fast path never exercised: {:?}",
        sw.stats()
    );
    // The dirty set drains except for trailing strays: a write rejected
    // *after* the final commit leaves an entry no sweep can reclaim until a
    // later commit advances the last-committed point past it. Those are
    // bounded by the final burst of rejected writes, never the workload.
    assert!(
        sw.detector().dirty_len() <= 3,
        "dirty set kept {} entries after quiescence",
        sw.detector().dirty_len()
    );
}

/// Harmonia's fast path must actually be exercised by these scenarios —
/// otherwise the adversarial tests silently degrade to baseline coverage.
#[test]
fn fast_path_reads_were_served() {
    let scenario = Scenario {
        deployment: cluster(ProtocolKind::Chain, true),
        write_ratio: 0.2,
        seed: 71,
        ..Scenario::default()
    };
    let outcome = scenario.run();
    let sw: &SwitchActor = outcome
        .world
        .actor(scenario.deployment.switch_addr())
        .expect("switch");
    assert!(
        sw.stats().reads_fast_path > 20,
        "fast path unused: {:?}",
        sw.stats()
    );
    assert_linearizable(outcome.records, "fast-path exercise");
}
