//! End-to-end linearizability: every protocol, with and without Harmonia,
//! under clean and adversarial networks, checked with the Wing–Gong
//! checker. This is the executable form of the paper's Theorem 1.

mod common;

use common::{assert_converged, assert_linearizable, Scenario};
use harmonia::prelude::*;

fn cluster(protocol: ProtocolKind, harmonia: bool) -> ClusterConfig {
    ClusterConfig {
        protocol,
        harmonia,
        replicas: 3,
        ..ClusterConfig::default()
    }
}

fn check(protocol: ProtocolKind, harmonia: bool, seed: u64, context: &str) {
    let scenario = Scenario {
        cluster: cluster(protocol, harmonia),
        seed,
        ..Scenario::default()
    };
    let outcome = scenario.run();
    assert_eq!(outcome.incomplete, 0, "{context}: ops gave up");
    assert_linearizable(outcome.records, context);
    assert_converged(&outcome.world, &scenario.cluster, scenario.keys);
}

#[test]
fn pb_baseline_is_linearizable() {
    check(ProtocolKind::PrimaryBackup, false, 11, "PB baseline");
}

#[test]
fn pb_harmonia_is_linearizable() {
    check(ProtocolKind::PrimaryBackup, true, 12, "Harmonia(PB)");
}

#[test]
fn chain_baseline_is_linearizable() {
    check(ProtocolKind::Chain, false, 13, "CR baseline");
}

#[test]
fn chain_harmonia_is_linearizable() {
    check(ProtocolKind::Chain, true, 14, "Harmonia(CR)");
}

#[test]
fn craq_is_linearizable() {
    check(ProtocolKind::Craq, false, 15, "CRAQ");
}

#[test]
fn vr_baseline_is_linearizable() {
    check(ProtocolKind::Vr, false, 16, "VR baseline");
}

#[test]
fn vr_harmonia_is_linearizable() {
    check(ProtocolKind::Vr, true, 17, "Harmonia(VR)");
}

#[test]
fn nopaxos_baseline_is_linearizable() {
    check(ProtocolKind::Nopaxos, false, 18, "NOPaxos baseline");
}

#[test]
fn nopaxos_harmonia_is_linearizable() {
    check(ProtocolKind::Nopaxos, true, 19, "Harmonia(NOPaxos)");
}

/// §5.2: consistency must hold "even when the network can arbitrarily delay
/// or reorder packets". Jittered links invert packet order regularly; the
/// in-order write rule plus the last-committed guard must keep histories
/// linearizable (rejected writes are retried by the clients).
///
/// One assumption is preserved from the paper's deployment model:
/// replica↔replica channels are reliable FIFO (they are TCP connections in
/// any real chain/PB deployment, and the §5.2 lazy-scrub argument — "writes
/// are processed in order" — depends on it: losing a chain DOWN message
/// while later writes survive would leave an applied-but-never-committable
/// write that the dirty set no longer tracks). Client↔switch and
/// switch↔replica paths get the full adversary: drops, duplicates, jitter,
/// reordering.
fn adversarial_link() -> LinkConfig {
    LinkConfig {
        base_latency: Duration::from_micros(5),
        jitter: Duration::from_micros(40),
        drop_prob: 0.01,
        duplicate_prob: 0.01,
        reorder_prob: 0.05,
        reorder_delay: Duration::from_micros(100),
        ..LinkConfig::default()
    }
}

/// Restore reliable FIFO channels between replicas (both directions).
fn reliable_intra_replica_links(world: &mut World<Msg>, replicas: usize) {
    let ideal = LinkConfig::ideal(Duration::from_micros(5));
    for a in 0..replicas as u32 {
        for b in 0..replicas as u32 {
            if a != b {
                world.network_mut().set_link(
                    NodeId::Replica(ReplicaId(a)),
                    NodeId::Replica(ReplicaId(b)),
                    ideal,
                );
            }
        }
    }
}

fn check_adversarial(protocol: ProtocolKind, harmonia: bool, seed: u64, context: &str) {
    let mut cfg = cluster(protocol, harmonia);
    cfg.link = adversarial_link();
    cfg.seed = seed;
    let replicas = cfg.replicas;
    let scenario = Scenario {
        cluster: cfg.clone(),
        clients: 3,
        ops_per_client: 50,
        keys: 6,
        write_ratio: 0.35,
        seed,
        ..Scenario::default()
    };
    let world = build_world(&cfg);
    let outcome = scenario.run_in(world, |w| reliable_intra_replica_links(w, replicas));
    assert_linearizable(outcome.records, context);
}

#[test]
fn chain_harmonia_survives_reordering_and_loss() {
    for seed in [21, 22, 23] {
        check_adversarial(ProtocolKind::Chain, true, seed, "Harmonia(CR) adversarial");
    }
}

#[test]
fn pb_harmonia_survives_reordering_and_loss() {
    for seed in [31, 32] {
        check_adversarial(
            ProtocolKind::PrimaryBackup,
            true,
            seed,
            "Harmonia(PB) adversarial",
        );
    }
}

#[test]
fn vr_harmonia_survives_reordering_and_loss() {
    for seed in [41, 42] {
        check_adversarial(ProtocolKind::Vr, true, seed, "Harmonia(VR) adversarial");
    }
}

#[test]
fn craq_survives_reordering_and_loss() {
    for seed in [51, 52] {
        check_adversarial(ProtocolKind::Craq, false, seed, "CRAQ adversarial");
    }
}

/// NOPaxos gap recovery covers follower-side multicast loss; the leader's
/// copy must arrive (DESIGN.md §6), so losses are injected only on the
/// switch→follower links.
#[test]
fn nopaxos_harmonia_survives_follower_loss() {
    let mut cfg = cluster(ProtocolKind::Nopaxos, true);
    cfg.seed = 61;
    let scenario = Scenario {
        cluster: cfg.clone(),
        clients: 3,
        ops_per_client: 40,
        keys: 6,
        write_ratio: 0.3,
        seed: 61,
        ..Scenario::default()
    };
    let world = build_world(&cfg);
    let outcome = scenario.run_in(world, |w| {
        for follower in [1u32, 2] {
            w.network_mut().set_link(
                cfg.switch_addr(),
                NodeId::Replica(ReplicaId(follower)),
                LinkConfig {
                    drop_prob: 0.05,
                    ..LinkConfig::ideal(Duration::from_micros(5))
                },
            );
        }
    });
    assert_linearizable(outcome.records, "Harmonia(NOPaxos) follower loss");
}

/// Harmonia's fast path must actually be exercised by these scenarios —
/// otherwise the adversarial tests silently degrade to baseline coverage.
#[test]
fn fast_path_reads_were_served() {
    let scenario = Scenario {
        cluster: cluster(ProtocolKind::Chain, true),
        write_ratio: 0.2,
        seed: 71,
        ..Scenario::default()
    };
    let outcome = scenario.run();
    let sw: &SwitchActor = outcome
        .world
        .actor(scenario.cluster.switch_addr())
        .expect("switch");
    assert!(
        sw.stats().reads_fast_path > 20,
        "fast path unused: {:?}",
        sw.stats()
    );
    assert_linearizable(outcome.records, "fast-path exercise");
}
