//! Correctness through failures: switch replacement and server removal must
//! preserve linearizability for in-flight clients (§5.3, Appendix A's
//! "switch failure" and "server failure" cases).

mod common;

use common::{assert_linearizable, Scenario};
use harmonia::prelude::*;

#[test]
fn history_through_switch_replacement_is_linearizable() {
    let spec = DeploymentSpec::new();
    let scenario = Scenario {
        deployment: spec.clone(),
        clients: 4,
        ops_per_client: 60,
        keys: 10,
        write_ratio: 0.3,
        seed: 101,
    };
    let outcome = scenario.run_with(|w| {
        // Kill the switch mid-workload and replace it with incarnation 2.
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        schedule_switch_failure(w, t(1), spec.switch_addr());
        let clients: Vec<NodeId> = (0..4).map(|c| NodeId::Client(ClientId(10 + c))).collect();
        schedule_switch_replacement(w, t(4), &spec, SwitchId(2), clients);
    });
    // Clients that lost requests during the outage retried through the
    // replacement; whatever completed must be linearizable.
    assert_linearizable(outcome.records, "switch replacement");
    // The replacement must actually have taken over fast-path duty.
    let sw: &SwitchActor = outcome
        .world
        .actor(NodeId::Switch(SwitchId(2)))
        .expect("replacement switch");
    assert!(sw.detector().fast_path_enabled());
}

#[test]
fn stale_switch_fast_path_reads_are_refused_after_lease_moves() {
    // Manual §5.3 scenario: a fast-path read stamped by switch 1 arrives at
    // a replica after the lease moved to switch 2. The replica must route
    // it through the normal protocol instead of answering locally.
    use harmonia::replication::{build_replica, GroupConfig as RGroupConfig, ProtocolKind};
    use harmonia::replication::{Effects, ReplicaControlMsg};
    use harmonia::types::{ClientRequest, PacketBody, ReadMode, RequestId, SwitchSeq};

    let mut replica = build_replica(RGroupConfig::new(ProtocolKind::Chain, 3, 1, true));
    // Lease moves to switch 2.
    let mut fx = Effects::new();
    replica.on_protocol(
        NodeId::Controller,
        harmonia::replication::ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(SwitchId(
            2,
        ))),
        &mut fx,
    );
    // Stale fast-path read from switch 1.
    let mut read = ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..]);
    read.read_mode = ReadMode::FastPath {
        switch: SwitchId(1),
    };
    read.last_committed = Some(SwitchSeq::new(SwitchId(1), 100));
    let mut fx = Effects::new();
    replica.on_request(NodeId::Client(ClientId(1)), read, &mut fx);
    assert!(
        matches!(
            fx.out[0],
            (NodeId::Replica(ReplicaId(2)), PacketBody::Request(_))
        ),
        "stale-switch read must go to the tail, got {:?}",
        fx.out
    );
}

#[test]
fn history_through_tail_removal_is_linearizable() {
    let spec = DeploymentSpec::new();
    let scenario = Scenario {
        deployment: spec.clone(),
        clients: 3,
        ops_per_client: 60,
        keys: 6,
        write_ratio: 0.3,
        seed: 103,
    };
    let outcome = scenario.run_with(|w| {
        schedule_replica_removal(
            w,
            Instant::ZERO + Duration::from_millis(1),
            &spec,
            spec.switch_addr(),
            ReplicaId(2),
        );
    });
    assert_linearizable(outcome.records, "tail removal");
}

#[test]
fn history_through_head_removal_is_linearizable() {
    let spec = DeploymentSpec::new();
    let scenario = Scenario {
        deployment: spec.clone(),
        clients: 3,
        ops_per_client: 60,
        keys: 6,
        write_ratio: 0.3,
        seed: 104,
    };
    let outcome = scenario.run_with(|w| {
        schedule_replica_removal(
            w,
            Instant::ZERO + Duration::from_millis(1),
            &spec,
            spec.switch_addr(),
            ReplicaId(0),
        );
    });
    assert_linearizable(outcome.records, "head removal");
}

#[test]
fn double_failover_keeps_lease_monotone() {
    // Switch 1 -> 2 -> 3; after each replacement the system must recover
    // and serve fast-path reads from the newest incarnation only.
    let spec = DeploymentSpec::new();
    let scenario = Scenario {
        deployment: spec.clone(),
        clients: 3,
        ops_per_client: 200,
        keys: 16,
        write_ratio: 0.25,
        seed: 105,
    };
    let outcome = scenario.run_with(|w| {
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        let clients: Vec<NodeId> = (0..3).map(|c| NodeId::Client(ClientId(10 + c))).collect();
        schedule_switch_failure(w, t(1), spec.switch_addr());
        schedule_switch_replacement(w, t(3), &spec, SwitchId(2), clients.clone());
        schedule_switch_failure(w, t(6), NodeId::Switch(SwitchId(2)));
        schedule_switch_replacement(w, t(9), &spec, SwitchId(3), clients);
    });
    assert_linearizable(outcome.records, "double failover");
    let sw: &SwitchActor = outcome
        .world
        .actor(NodeId::Switch(SwitchId(3)))
        .expect("third switch");
    assert_eq!(sw.incarnation(), SwitchId(3));
    assert!(sw.detector().fast_path_enabled());
}
