//! Tier-1 gate: the committed tree must be lint-clean, and the checker must
//! still have teeth (a seeded violation in a deterministic crate fires).

use harmonia_lint::{lint_source, lint_workspace, Policy, Rule};

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The committed tree holds every invariant the checker states: no
/// wall-clock reads or hash-order iteration in the deterministic crates, no
/// unsanctioned or unjustified `unsafe`, no panics on the packet path, no
/// I/O in the sans-IO crates, and no malformed waivers.
#[test]
fn workspace_is_lint_clean() {
    let findings = lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "the committed tree must be lint-clean; run `cargo run -p harmonia-lint`:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The acceptance demonstration: an `Instant::now()` injected into a
/// `crates/sim` source file is caught. Guards against the checker rotting
/// into a rubber stamp while the self-check above stays green.
#[test]
fn injected_wall_clock_read_in_sim_is_caught() {
    let src = "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n";
    let findings = lint_source("crates/sim/src/injected.rs", src, &Policy::workspace());
    assert!(
        findings.iter().any(|f| f.rule == Rule::Determinism),
        "an injected `Instant::now()` in crates/sim must fire: {findings:?}"
    );
}

/// Same demonstration for the other three families, one seeded violation
/// each, so no family can silently lose its policy wiring.
#[test]
fn every_rule_family_has_teeth() {
    let policy = Policy::workspace();
    let cases: [(&str, &str, Rule); 3] = [
        (
            "crates/types/src/wire.rs",
            "fn f(v: &[u8]) -> u8 { v[0] }\n",
            Rule::PanicPath,
        ),
        (
            "crates/replication/src/x.rs",
            "use std::net::UdpSocket;\n",
            Rule::Layering,
        ),
        (
            "crates/switch/src/x.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
            Rule::Unsafe,
        ),
    ];
    for (path, src, rule) in cases {
        let findings = lint_source(path, src, &policy);
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "{path}: expected {rule:?} to fire, got {findings:?}"
        );
    }
}
