//! Live (threaded) driver integration: the same state machines as the
//! simulation, on OS threads with channel links.

use bytes::Bytes;
use harmonia::prelude::*;

fn spawn(protocol: ProtocolKind, harmonia: bool, replicas: usize) -> LiveCluster {
    DeploymentSpec::new()
        .protocol(protocol)
        .harmonia(harmonia)
        .replicas(replicas)
        .spawn_live()
}

#[test]
fn five_replica_chain_serves_many_keys() {
    let cluster = spawn(ProtocolKind::Chain, true, 5);
    let mut client = cluster.client();
    for i in 0..200 {
        client
            .set(format!("key-{i}"), format!("value-{i}"))
            .unwrap();
    }
    for i in (0..200).rev() {
        assert_eq!(
            client.get(format!("key-{i}")).unwrap(),
            Some(Bytes::from(format!("value-{i}")))
        );
    }
    cluster.shutdown();
}

#[test]
fn concurrent_clients_maintain_read_your_writes() {
    let cluster = spawn(ProtocolKind::Chain, true, 3);
    let mut handles = Vec::new();
    for t in 0..4 {
        let mut client = cluster.client();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let key = format!("t{t}-k{}", i % 10);
                let value = format!("t{t}-v{i}");
                client.set(key.clone(), value.clone()).unwrap();
                // Read-your-writes: only this thread writes its keys, so the
                // read must observe the latest value.
                let got = client.get(key).unwrap();
                assert_eq!(got, Some(Bytes::from(value)), "thread {t} op {i}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn writes_are_visible_across_clients_per_protocol() {
    for (protocol, harmonia) in [
        (ProtocolKind::PrimaryBackup, true),
        (ProtocolKind::Chain, true),
        (ProtocolKind::Craq, false),
        (ProtocolKind::Vr, true),
        (ProtocolKind::Nopaxos, true),
    ] {
        let cluster = spawn(protocol, harmonia, 3);
        let mut writer = cluster.client();
        let mut reader = cluster.client();
        writer.set("handoff", "payload").unwrap();
        assert_eq!(
            reader.get("handoff").unwrap(),
            Some(Bytes::from_static(b"payload")),
            "{protocol:?}"
        );
        cluster.shutdown();
    }
}

#[test]
fn monotonic_counter_between_two_threads() {
    // Two threads alternate incrementing a counter via read-modify-write of
    // their own keys plus a shared watermark; the watermark must never be
    // observed going backwards (a coarse linearizability smoke signal under
    // real thread interleavings).
    let cluster = spawn(ProtocolKind::Chain, true, 3);
    let mut handles = Vec::new();
    for t in 0..2 {
        let mut client = cluster.client();
        handles.push(std::thread::spawn(move || {
            let mut last_seen = 0u64;
            for i in 1..=60u64 {
                client
                    .set(format!("mark-{t}"), i.to_string())
                    .expect("write");
                if let Some(v) = client.get(format!("mark-{t}")).expect("read") {
                    let seen: u64 = String::from_utf8_lossy(&v).parse().unwrap();
                    assert!(seen >= last_seen, "own watermark went backwards");
                    last_seen = seen;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cluster.shutdown();
}

/// §5.3 on real threads, quiesced for determinism: after the switch dies
/// and a replacement (incarnation 2) takes over, the replacement must
/// forward everything through the normal protocol — reads completing do
/// NOT re-enable the fast path — until the first WRITE-COMPLETION bearing
/// its *own* id arrives. Checked step by step through the live switch's
/// stats handle.
#[test]
fn live_switch_replacement_follows_first_own_completion_rule() {
    let mut cluster = spawn(ProtocolKind::Chain, true, 3);
    let mut client = cluster.client();

    // Warm up: a committed write arms incarnation 1's fast path.
    client.set("warm", "1").unwrap();
    assert_eq!(cluster.fast_path_enabled(), Some(true));
    assert_eq!(cluster.switch_incarnation(), Some(SwitchId(1)));

    // Step 1: the switch fails. Requests now vanish; a read times out.
    cluster.kill_switch();
    assert_eq!(cluster.switch_stats(), None);
    assert!(client.get("warm").is_err(), "no switch, no service");

    // Steps 2–3: replacement under a fresh, larger incarnation; lease
    // moves. Its dirty set is empty and its fast path must be OFF.
    cluster.replace_switch(SwitchId(2));
    assert_eq!(cluster.switch_incarnation(), Some(SwitchId(2)));
    assert_eq!(cluster.fast_path_enabled(), Some(false));

    // Reads are served through the normal protocol and do not arm it.
    assert_eq!(client.get("warm").unwrap(), Some(Bytes::from_static(b"1")));
    let stats = cluster.switch_stats().unwrap();
    assert!(stats.reads_normal > 0);
    assert_eq!(stats.reads_fast_path, 0);
    assert_eq!(cluster.fast_path_enabled(), Some(false));

    // Step 4: the first write committed under incarnation 2 re-enables
    // single-replica reads.
    client.set("rearm", "2").unwrap();
    assert_eq!(cluster.fast_path_enabled(), Some(true));
    let stats = cluster.switch_stats().unwrap();
    assert!(stats.completions > 0, "completion must have been snooped");
    assert_eq!(client.get("warm").unwrap(), Some(Bytes::from_static(b"1")));
    let stats = cluster.switch_stats().unwrap();
    assert!(
        stats.reads_fast_path > 0,
        "armed switch must fast-path an uncontended read: {stats:?}"
    );
    cluster.shutdown();
}

/// Failover under load: writer threads keep writing while the switch is
/// killed and replaced. Every acknowledged write must remain readable
/// afterwards, the replacement must end up serving the fast path, and its
/// stats must show it processed completions of its own.
#[test]
fn live_switch_failover_under_write_load() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut cluster = spawn(ProtocolKind::Chain, true, 3);
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..3u32 {
        let mut client = cluster.client();
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            // Highest index acknowledged per key slot; errors during the
            // outage are expected (the op may or may not have landed, so
            // its slot is not counted as acknowledged).
            let mut acked: Vec<Option<u32>> = vec![None; 8];
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let slot = (i % 8) as usize;
                if client.set(format!("t{t}-k{slot}"), i.to_string()).is_ok() {
                    acked[slot] = Some(i);
                }
                i += 1;
            }
            acked
        }));
    }

    // Let traffic flow, then kill and replace the switch mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(50));
    cluster.kill_switch();
    std::thread::sleep(std::time::Duration::from_millis(30));
    cluster.replace_switch(SwitchId(2));
    // Writers keep running against the replacement before stopping. The
    // window must exceed the client's per-attempt timeout (200 ms): an op
    // that was in flight at the kill can spend one full timeout before its
    // retry resolves (possibly as a deduplicated replay of an old-
    // incarnation commit, which does not arm the new fast path), and only
    // *then* does that writer issue fresh writes under the replacement.
    std::thread::sleep(std::time::Duration::from_millis(450));
    stop.store(true, Ordering::Relaxed);
    let acked: Vec<Vec<Option<u32>>> = writers.into_iter().map(|w| w.join().unwrap()).collect();

    // The replacement armed via its own first completion and is serving.
    assert_eq!(cluster.switch_incarnation(), Some(SwitchId(2)));
    assert_eq!(cluster.fast_path_enabled(), Some(true));
    let stats = cluster.switch_stats().unwrap();
    assert!(stats.writes_forwarded > 0, "{stats:?}");
    assert!(stats.completions > 0, "{stats:?}");

    // Read-your-writes across the failover: each writer's last acknowledged
    // value per slot (or a later unacknowledged retry of the same slot)
    // must be visible. Only that writer touches its keys, and within a slot
    // values are the writer's increasing counter, so the read must be >=
    // the last acknowledged write.
    let mut reader = cluster.client();
    let mut fast_reads = 0;
    for (t, slots) in acked.iter().enumerate() {
        for (slot, &last) in slots.iter().enumerate() {
            let Some(last) = last else { continue };
            let got = reader
                .get(format!("t{t}-k{slot}"))
                .expect("read after failover")
                .unwrap_or_else(|| panic!("t{t}-k{slot}: acknowledged write lost"));
            let got: u32 = String::from_utf8_lossy(&got).parse().unwrap();
            assert!(
                got >= last,
                "t{t}-k{slot}: read {got} older than acknowledged {last}"
            );
            fast_reads += 1;
        }
    }
    assert!(fast_reads > 0, "no acknowledged writes to verify");
    cluster.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_per_client() {
    let cluster = spawn(ProtocolKind::Chain, true, 3);
    let mut client = cluster.client();
    client.set("k", "v").unwrap();
    cluster.shutdown();
    // Post-shutdown operations fail with a clean error, not a hang.
    let result = client.get("k");
    assert!(
        result.is_err(),
        "expected Disconnected/TimedOut, got {result:?}"
    );
}
