//! Live (threaded) driver integration: the same state machines as the
//! simulation, on OS threads with channel links.

use bytes::Bytes;
use harmonia::prelude::*;

fn spawn(protocol: ProtocolKind, harmonia: bool, replicas: usize) -> LiveCluster {
    LiveCluster::spawn(&ClusterConfig {
        protocol,
        harmonia,
        replicas,
        ..ClusterConfig::default()
    })
}

#[test]
fn five_replica_chain_serves_many_keys() {
    let cluster = spawn(ProtocolKind::Chain, true, 5);
    let mut client = cluster.client();
    for i in 0..200 {
        client
            .set(format!("key-{i}"), format!("value-{i}"))
            .unwrap();
    }
    for i in (0..200).rev() {
        assert_eq!(
            client.get(format!("key-{i}")).unwrap(),
            Some(Bytes::from(format!("value-{i}")))
        );
    }
    cluster.shutdown();
}

#[test]
fn concurrent_clients_maintain_read_your_writes() {
    let cluster = spawn(ProtocolKind::Chain, true, 3);
    let mut handles = Vec::new();
    for t in 0..4 {
        let mut client = cluster.client();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let key = format!("t{t}-k{}", i % 10);
                let value = format!("t{t}-v{i}");
                client.set(key.clone(), value.clone()).unwrap();
                // Read-your-writes: only this thread writes its keys, so the
                // read must observe the latest value.
                let got = client.get(key).unwrap();
                assert_eq!(got, Some(Bytes::from(value)), "thread {t} op {i}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn writes_are_visible_across_clients_per_protocol() {
    for (protocol, harmonia) in [
        (ProtocolKind::PrimaryBackup, true),
        (ProtocolKind::Chain, true),
        (ProtocolKind::Craq, false),
        (ProtocolKind::Vr, true),
        (ProtocolKind::Nopaxos, true),
    ] {
        let cluster = spawn(protocol, harmonia, 3);
        let mut writer = cluster.client();
        let mut reader = cluster.client();
        writer.set("handoff", "payload").unwrap();
        assert_eq!(
            reader.get("handoff").unwrap(),
            Some(Bytes::from_static(b"payload")),
            "{protocol:?}"
        );
        cluster.shutdown();
    }
}

#[test]
fn monotonic_counter_between_two_threads() {
    // Two threads alternate incrementing a counter via read-modify-write of
    // their own keys plus a shared watermark; the watermark must never be
    // observed going backwards (a coarse linearizability smoke signal under
    // real thread interleavings).
    let cluster = spawn(ProtocolKind::Chain, true, 3);
    let mut handles = Vec::new();
    for t in 0..2 {
        let mut client = cluster.client();
        handles.push(std::thread::spawn(move || {
            let mut last_seen = 0u64;
            for i in 1..=60u64 {
                client
                    .set(format!("mark-{t}"), i.to_string())
                    .expect("write");
                if let Some(v) = client.get(format!("mark-{t}")).expect("read") {
                    let seen: u64 = String::from_utf8_lossy(&v).parse().unwrap();
                    assert!(seen >= last_seen, "own watermark went backwards");
                    last_seen = seen;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_per_client() {
    let cluster = spawn(ProtocolKind::Chain, true, 3);
    let mut client = cluster.client();
    client.set("k", "v").unwrap();
    cluster.shutdown();
    // Post-shutdown operations fail with a clean error, not a hang.
    let result = client.get("k");
    assert!(
        result.is_err(),
        "expected Disconnected/TimedOut, got {result:?}"
    );
}
