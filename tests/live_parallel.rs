//! The parallel live data plane under concurrent multi-group load.
//!
//! The live switch is a fleet of per-group pipeline threads (no shared lock
//! on the packet path); the spine is a stateless shard router. These tests
//! drive every group concurrently from many client threads, inject the §5.3
//! switch kill/replacement mid-load, and push every per-key history through
//! the Wing–Gong linearizability checker — the strongest end-to-end claim
//! the driver makes.

// Wall-clock reads are deliberate here: live-cluster test: real-time deadlines.
#![allow(clippy::disallowed_methods)]

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use bytes::Bytes;
use common::{assert_linearizable_traced, collect_records, make_plans};
use harmonia::prelude::*;

fn sharded_spec(groups: usize) -> DeploymentSpec {
    DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .groups(groups)
        .replicas(3)
}

/// All groups in parallel through the per-group pipelines: 8 client
/// threads, keys spread over every group, full-history Wing–Gong check.
#[test]
fn parallel_pipelines_serve_all_groups_linearizably() {
    let spec = sharded_spec(4);
    let mut cluster = spec.spawn_live();
    let plans = make_plans(8, 60, 32, 0.4, 7);
    let histories = cluster.run_plans(plans);
    let (records, incomplete) = collect_records(&histories);
    assert_eq!(incomplete, 0, "healthy cluster must complete every op");
    assert_linearizable_traced(
        records,
        &cluster.trace_events(),
        "live 4-group parallel pipelines",
    );

    // Every pipeline actually carried traffic, and the per-group counters
    // are disjoint: each op shows up in exactly one group's stats.
    let view = cluster.switch_view().expect("switch is up");
    assert_eq!(view.group_count(), 4);
    for o in view.groups() {
        assert!(
            o.stats.writes_forwarded > 0,
            "group {:?} never saw a write: {:?}",
            o.group,
            o.stats
        );
    }
    let total = cluster.switch_stats().unwrap();
    let folded = view.stats();
    assert_eq!(total.writes_forwarded, folded.writes_forwarded);
    cluster.shutdown();
}

/// One recorded operation of a free-running worker thread.
fn run_worker(
    mut client: LiveClient,
    t: u32,
    keys: usize,
    epoch: StdInstant,
    stop: Arc<AtomicBool>,
) -> Vec<RecordedOp> {
    let stamp = |at: StdInstant| {
        Instant::ZERO + Duration::from_nanos(at.duration_since(epoch).as_nanos() as u64)
    };
    let key_pool: Vec<Bytes> = (0..keys).map(|k| Bytes::from(format!("key-{k}"))).collect();
    let mut records = Vec::new();
    let mut i = 0u32;
    while !stop.load(Ordering::Relaxed) {
        let key = key_pool[(i as usize * 7 + t as usize) % keys].clone();
        let invoked = StdInstant::now();
        if i.is_multiple_of(3) {
            // Unique value per write so the checker can tell writes apart.
            let value = Bytes::from(format!("t{t}-i{i}"));
            let ok = client.set(key.clone(), value.clone()).is_ok();
            records.push(RecordedOp {
                kind: OpKind::Write,
                key,
                value: Some(value),
                invoked: stamp(invoked),
                completed: stamp(StdInstant::now()),
                result: None,
                ok,
            });
        } else {
            let (result, ok) = match client.get(key.clone()) {
                Ok(v) => (v, true),
                Err(_) => (None, false),
            };
            records.push(RecordedOp {
                kind: OpKind::Read,
                key,
                value: None,
                invoked: stamp(invoked),
                completed: stamp(StdInstant::now()),
                result,
                ok,
            });
        }
        i += 1;
        // Pace the worker so per-key histories stay inside the checker's
        // exhaustive-search budget; the fleet still sees concurrent load
        // from every thread throughout the outage window.
        std::thread::sleep(StdDuration::from_millis(1));
    }
    records
}

/// §5.3 mid-load: concurrent workers on every group while the whole
/// pipeline fleet is killed and replaced under a fresh incarnation. Every
/// per-key history (excluding keys touched by abandoned ops, whose effects
/// are undefined) must stay linearizable across the outage, and the
/// replacement fleet must end up serving the fast path again.
#[test]
fn kill_and_replace_mid_parallel_load_stays_linearizable() {
    let spec = sharded_spec(4);
    let mut cluster = spec.spawn_live();
    let epoch = StdInstant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let keys = 48usize;

    let workers: Vec<_> = (0..6u32)
        .map(|t| {
            let client = cluster.client();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_worker(client, t, keys, epoch, stop))
        })
        .collect();

    // Let traffic flow on every pipeline, then fail the whole fleet and
    // activate the replacement while the workers keep hammering it.
    std::thread::sleep(StdDuration::from_millis(60));
    cluster.kill_switch();
    assert_eq!(cluster.switch_stats(), None, "no fleet, no stats");
    std::thread::sleep(StdDuration::from_millis(30));
    cluster.replace_switch(SwitchId(2));
    std::thread::sleep(StdDuration::from_millis(120));
    stop.store(true, Ordering::Relaxed);
    let histories: Vec<Vec<RecordedOp>> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    assert_eq!(cluster.switch_incarnation(), Some(SwitchId(2)));
    let completed: usize = histories.iter().flatten().filter(|r| r.ok).count();
    assert!(
        completed > 50,
        "only {completed} ops completed across the run"
    );

    // Wing–Gong over every per-key history that only completed ops touched.
    let (records, _incomplete) = collect_records(&histories);
    assert!(!records.is_empty(), "nothing survived to check");
    assert_linearizable_traced(
        records,
        &cluster.trace_events(),
        "live 4-group load across switch replacement",
    );

    // The replacement fleet is serving: one committed write per group
    // re-arms that group's fast path (first own-id WRITE-COMPLETION rule).
    let mut client = cluster.client();
    for key in spec.group_covering_keys() {
        client.set(key, "1").unwrap();
    }
    for g in 0..4u32 {
        assert_eq!(
            cluster.group_fast_path_enabled(GroupId(g)),
            Some(true),
            "group {g} fast path must re-arm under incarnation 2"
        );
    }
    let stats = cluster.switch_stats().unwrap();
    assert!(stats.completions >= 4, "{stats:?}");
    cluster.shutdown();
}

/// The spine routes on the sender's thread: a client whose keys all hash to
/// one group only ever wakes that group's pipeline — other groups' counters
/// stay untouched (ownership is really per group).
#[test]
fn shard_routing_isolates_untouched_groups() {
    let spec = sharded_spec(4);
    let cluster = spec.spawn_live();
    let map = spec.shard_map();
    // Find keys that all live in group 2.
    let keys: Vec<String> = (0..1000u32)
        .map(|i| format!("pin-{i}"))
        .filter(|k| map.shard_of_key(k.as_bytes()) == 2)
        .take(20)
        .collect();
    assert!(keys.len() == 20, "hash spread must yield enough keys");
    let mut client = cluster.client();
    for (i, k) in keys.iter().enumerate() {
        client.set(k.clone(), format!("v{i}")).unwrap();
        assert_eq!(
            client.get(k.clone()).unwrap(),
            Some(Bytes::from(format!("v{i}")))
        );
    }
    let view = cluster.switch_view().unwrap();
    for o in view.groups() {
        let total = o.stats.writes_forwarded + o.stats.reads_fast_path + o.stats.reads_normal;
        if o.group == GroupId(2) {
            assert_eq!(o.stats.writes_forwarded, 20, "{:?}", o.stats);
        } else {
            assert_eq!(
                total, 0,
                "group {:?} should be idle: {:?}",
                o.group, o.stats
            );
        }
    }
    cluster.shutdown();
}
