//! Exhaustive model checking of the Appendix B specification at larger
//! bounds than the unit tests (still small enough for CI).

use harmonia::verify::{ModelConfig, ModelOutcome, SpecModel};

fn verify(cfg: ModelConfig, context: &str) -> usize {
    match SpecModel::new(cfg).run() {
        ModelOutcome::Verified { states } => states,
        other => panic!("{context}: {other:?}"),
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive search; run under --release")]
fn read_ahead_two_switches_two_items() {
    let states = verify(
        ModelConfig {
            items: 2,
            replicas: 2,
            switches: 2,
            read_behind: false,
            max_writes_per_switch: 2,
            max_reads: 2,
            max_responses: 2,
            max_states: 3_000_000,
            guard_enabled: true,
        },
        "read-ahead 2x2x2",
    );
    assert!(states > 10_000, "state space suspiciously small: {states}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive search; run under --release")]
fn read_behind_two_switches_two_items() {
    // The read-behind variant's committed log equals the full log, which
    // inflates the reachable space past 3M states; a bounded search with no
    // violation is the standard TLC outcome for such configurations.
    let outcome = SpecModel::new(ModelConfig {
        items: 2,
        replicas: 2,
        switches: 2,
        read_behind: true,
        max_writes_per_switch: 2,
        max_reads: 2,
        max_responses: 2,
        max_states: 2_000_000,
        guard_enabled: true,
    })
    .run();
    match outcome {
        ModelOutcome::Verified { states } => assert!(states > 10_000),
        ModelOutcome::Truncated { states } => {
            assert!(states >= 2_000_000, "bounded search ended early: {states}")
        }
        ModelOutcome::ViolationFound { state, response } => {
            panic!("violation: {response}\n{state}")
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive search; run under --release")]
fn read_behind_three_replicas() {
    verify(
        ModelConfig {
            items: 1,
            replicas: 3,
            switches: 2,
            read_behind: true,
            max_writes_per_switch: 2,
            max_reads: 2,
            max_responses: 2,
            max_states: 3_000_000,
            guard_enabled: true,
        },
        "read-behind 3 replicas",
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive search; run under --release")]
fn read_ahead_three_replicas() {
    verify(
        ModelConfig {
            items: 1,
            replicas: 3,
            switches: 2,
            read_behind: false,
            max_writes_per_switch: 2,
            max_reads: 2,
            max_responses: 2,
            max_states: 3_000_000,
            guard_enabled: true,
        },
        "read-ahead 3 replicas",
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive search; run under --release")]
fn mutations_are_caught_in_both_modes_with_failover() {
    for read_behind in [false, true] {
        let outcome = SpecModel::new(ModelConfig {
            items: 1,
            replicas: 2,
            switches: 2,
            read_behind,
            max_writes_per_switch: 2,
            max_reads: 2,
            max_responses: 2,
            max_states: 3_000_000,
            guard_enabled: false,
        })
        .run();
        assert!(
            matches!(outcome, ModelOutcome::ViolationFound { .. }),
            "guardless spec (read_behind={read_behind}) survived: {outcome:?}"
        );
    }
}
