//! The unified observability surface, exercised driver-agnostically: the
//! same workload through `Box<dyn Cluster>` on all three drivers must yield
//! an [`ObsSnapshot`] whose switch, client, replica, and latency sections
//! are populated, whose trace timeline covers the run, and whose Prometheus
//! and JSON renderings are well-formed. Plus property tests on the bounded
//! trace ring: overflow drops oldest, never panics, and the accounting
//! (`recorded`/`dropped`) always balances.

mod common;

use common::make_plans;
use harmonia::obs::TraceRing;
use harmonia::prelude::*;
use harmonia::types::{RequestId, TraceId};
use proptest::prelude::*;

fn all_drivers(spec: &DeploymentSpec) -> Vec<(&'static str, Box<dyn Cluster>)> {
    vec![
        ("sim", Box::new(spec.build_sim())),
        ("live", Box::new(spec.spawn_live())),
        ("udp", Box::new(spec.spawn_udp())),
    ]
}

/// One snapshot from any driver exposes the full cross-layer picture:
/// switch counters, client counters, replica counters, latency quantiles,
/// and trace accounting — through nothing but the `Cluster` trait.
#[test]
fn snapshot_covers_every_layer_on_every_driver() {
    let spec = DeploymentSpec::new().protocol(ProtocolKind::Chain).seed(77);
    for (name, mut cluster) in all_drivers(&spec) {
        let plans = make_plans(3, 40, 8, 0.4, 77);
        let histories = cluster.run_plans(plans);
        let ops: u64 = histories.iter().flatten().filter(|r| r.ok).count() as u64;
        assert!(ops > 0, "{name}: workload ran");

        let snap = cluster.obs_snapshot();
        assert_eq!(snap.driver, name, "snapshot self-identifies its driver");
        assert_eq!(snap.protocol, "chain");
        assert_eq!((snap.groups, snap.replicas), (1, 3), "{name}");

        // Switch layer: the spine actually classified traffic.
        let sw = &snap.switch;
        assert!(sw.writes_forwarded > 0, "{name}: no writes forwarded");
        assert!(
            sw.reads_fast_path + sw.reads_normal > 0,
            "{name}: no reads classified"
        );
        assert_eq!(snap.per_group.len(), 1, "{name}: one group's detail");
        assert_eq!(
            snap.per_group[0].writes_forwarded, sw.writes_forwarded,
            "{name}: single-group totals agree with the spine aggregate"
        );

        // Client layer: issue/complete counters consistent with the
        // histories the harness already holds.
        let cl = &snap.clients;
        assert!(
            cl.reads_sent > 0 && cl.writes_sent > 0,
            "{name}: clients recorded sends: {cl:?}"
        );
        assert_eq!(
            cl.reads_done + cl.writes_done,
            ops,
            "{name}: completions match the recorded histories"
        );

        // Replica layer: every completed op executed somewhere.
        assert!(
            snap.replica.requests >= ops,
            "{name}: replicas executed at least one hop per op: {:?}",
            snap.replica
        );

        // Latency summaries: ordered quantiles with real samples.
        for (which, h) in [("read", &snap.read_latency), ("write", &snap.write_latency)] {
            assert!(h.count > 0, "{name}: no {which} latency samples");
            assert!(
                h.p50_ns <= h.p99_ns && h.p99_ns <= h.p999_ns && h.p999_ns <= h.max_ns,
                "{name}: {which} quantiles out of order: {h:?}"
            );
            assert!(h.p50_ns > 0, "{name}: {which} p50 is zero");
        }

        // Trace layer: the rings saw the run, and the merged timeline is
        // time-sorted with client bookends.
        let events = cluster.trace_events();
        assert!(
            snap.trace.recorded >= ops,
            "{name}: fewer trace events than ops"
        );
        assert!(!events.is_empty(), "{name}: no trace events surfaced");
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "{name}: trace timeline is not time-sorted"
        );
        assert!(
            events.iter().any(|e| e.stage == TraceStage::ClientSend)
                && events.iter().any(|e| e.stage == TraceStage::ClientDone),
            "{name}: timeline lacks client bookends"
        );
        assert!(
            events.iter().any(|e| e.stage == TraceStage::ReplicaExecute),
            "{name}: no replica-execute hop traced"
        );
    }
}

/// The UDP driver is the only one with a wire: its snapshot must carry
/// transport and pool counters, and the in-memory drivers must report that
/// layer as all-zero rather than inventing numbers.
#[test]
fn transport_section_is_populated_only_where_a_wire_exists() {
    let spec = DeploymentSpec::new().seed(5);
    for (name, mut cluster) in all_drivers(&spec) {
        {
            let mut client = cluster.client();
            for i in 0..10 {
                client.set(format!("k{i}").as_bytes(), b"v").unwrap();
                client.get(format!("k{i}").as_bytes()).unwrap();
            }
        }
        let snap = cluster.obs_snapshot();
        let tr = &snap.transport;
        if name == "udp" {
            assert!(tr.frames_sent > 0, "udp: no frames counted");
            assert!(
                tr.datagrams_sent > 0 && tr.datagrams_sent <= tr.frames_sent,
                "udp: coalescing invariant violated: {tr:?}"
            );
            assert!(tr.frames_received > 0, "udp: no frames received");
            assert_eq!(tr.decode_errors, 0, "udp: clean run decoded everything");
            let p = &snap.pool;
            assert!(
                p.recv_hits + p.recv_misses > 0,
                "udp: receive pool never consulted"
            );
        } else {
            assert_eq!(
                *tr,
                Default::default(),
                "{name}: in-memory substrate must not fake wire counters"
            );
        }
    }
}

/// Both renderers accept any driver's snapshot: the Prometheus text carries
/// typed, labelled series and the JSON document is schema-versioned with a
/// fixed key order (same snapshot → same bytes).
#[test]
fn exporters_render_all_drivers() {
    let spec = DeploymentSpec::new().seed(11);
    for (name, mut cluster) in all_drivers(&spec) {
        {
            let mut client = cluster.client();
            client.set(b"a", b"1").unwrap();
            client.get(b"a").unwrap();
        }
        let snap = cluster.obs_snapshot();

        let prom = prometheus_text(&snap);
        assert!(
            prom.contains(&format!("driver=\"{name}\"")),
            "{name}: missing driver label"
        );
        assert!(prom.contains("# TYPE harmonia_switch_writes_forwarded counter"));
        assert!(prom.contains("# TYPE harmonia_read_latency_ns summary"));
        assert!(prom.contains("quantile=\"0.999\""));
        // Every exposition line is either a comment or name{labels} value.
        for line in prom.lines() {
            assert!(
                line.starts_with('#') || (line.contains('{') && line.contains("} ")),
                "{name}: malformed exposition line: {line}"
            );
        }

        let json = json_text(&snap);
        assert!(json.starts_with("{\n  \"schema_version\":"), "{name}");
        assert!(json.contains(&format!("\"driver\": \"{name}\"")));
        assert!(json.contains("\"p999_ns\":"), "{name}: no quantiles");
        assert_eq!(
            json,
            json_text(&snap),
            "{name}: same snapshot must render to the same bytes"
        );
        // Balanced braces/brackets — cheap well-formedness without a parser.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'), "{name}: unbalanced");
    }
}

fn ev(i: u64) -> harmonia::obs::TraceEvent {
    harmonia::obs::TraceEvent {
        at: Instant::ZERO + Duration::from_nanos(i),
        node: NodeId::Client(ClientId(1)),
        id: TraceId::new(ClientId(1), RequestId(i)),
        obj: ObjectId(7),
        stage: TraceStage::ClientSend,
    }
}

proptest! {
    /// A bounded ring never panics and never exceeds its capacity, no
    /// matter how far past capacity it is pushed; overflow drops the
    /// *oldest* events, keeping the newest `cap` in push order; and the
    /// recorded/dropped accounting always balances.
    #[test]
    fn trace_ring_overflow_drops_oldest(cap in 1usize..64, pushes in 0u64..512) {
        let mut ring = TraceRing::new(cap);
        for i in 0..pushes {
            ring.push(ev(i));
        }
        prop_assert_eq!(ring.capacity(), cap);
        prop_assert_eq!(ring.len(), (pushes as usize).min(cap));
        prop_assert_eq!(ring.recorded(), pushes);
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(cap as u64));
        let kept = ring.events();
        let first_kept = pushes.saturating_sub(cap as u64);
        let expect: Vec<_> = (first_kept..pushes).map(ev).collect();
        prop_assert_eq!(kept, expect);
    }

    /// Interleaving reads with overflowing writes keeps the ring coherent:
    /// `events()` is always a contiguous, newest-suffix window.
    #[test]
    fn trace_ring_reads_between_overflows_stay_coherent(
        batches in prop::collection::vec(1u64..40, 1..8),
    ) {
        let mut ring = TraceRing::new(16);
        let mut total = 0u64;
        for batch in batches {
            for _ in 0..batch {
                ring.push(ev(total));
                total += 1;
            }
            let kept = ring.events();
            prop_assert!(kept.len() <= 16);
            let first_kept = total.saturating_sub(16);
            let expect: Vec<_> = (first_kept..total).map(ev).collect();
            prop_assert_eq!(kept, expect);
            prop_assert_eq!(ring.recorded() - ring.dropped(), ring.len() as u64);
        }
    }
}
