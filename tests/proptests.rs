//! Property-based tests on the core data structures and invariants.

use bytes::Bytes;
use harmonia::prelude::*;
use harmonia::switch::conflict::{ConflictConfig, WriteDecision};
use harmonia::switch::spine::{GroupId as GId, SpineSwitch as Spine};
use harmonia::switch::table::TableConfig as TC;
use harmonia::types::wire::{decode_frame, encode_frame};
use harmonia::types::{
    ClientReply, ClientRequest, ControlMsg, ObjectId, Packet, PacketBody, ReadMode, RequestId,
    SwitchSeq, WriteCompletion, WriteOutcome,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_seq() -> impl Strategy<Value = SwitchSeq> {
    (1u32..4, 0u64..1000).prop_map(|(s, n)| SwitchSeq::new(SwitchId(s), n))
}

fn arb_completion() -> impl Strategy<Value = WriteCompletion> {
    (0u32..64, arb_seq()).prop_map(|(o, seq)| WriteCompletion {
        obj: ObjectId(o),
        seq,
    })
}

fn arb_reply() -> impl Strategy<Value = ClientReply> {
    (
        0u32..100,
        0u64..10_000,
        0u32..64,
        prop::option::of(prop::collection::vec(any::<u8>(), 0..64)),
        prop::option::of(0u8..3),
        prop::option::of(arb_completion()),
    )
        .prop_map(|(c, r, o, value, outcome, completion)| ClientReply {
            client: ClientId(c),
            from: ReplicaId(c % 7),
            request: RequestId(r),
            obj: ObjectId(o),
            value: value.map(Bytes::from),
            write_outcome: outcome.map(|w| match w {
                0 => WriteOutcome::Committed,
                1 => WriteOutcome::DroppedBySwitch,
                _ => WriteOutcome::Rejected,
            }),
            completion,
        })
}

fn arb_control() -> impl Strategy<Value = ControlMsg> {
    (0u8..3, 0u32..8, prop::collection::vec(0u32..8, 0..5)).prop_map(|(kind, r, rs)| match kind {
        0 => ControlMsg::AddReplica(ReplicaId(r)),
        1 => ControlMsg::RemoveReplica(ReplicaId(r)),
        _ => ControlMsg::SetReplicas(rs.into_iter().map(ReplicaId).collect()),
    })
}

fn arb_request() -> impl Strategy<Value = ClientRequest> {
    (
        0u32..100,
        0u64..10_000,
        prop::collection::vec(any::<u8>(), 0..64),
        prop::option::of(prop::collection::vec(any::<u8>(), 0..128)),
        prop::option::of(arb_seq()),
        prop::option::of(arb_seq()),
        prop::bool::ANY,
    )
        .prop_map(|(c, r, key, value, seq, lc, fast)| {
            let mut req = match &value {
                Some(v) => ClientRequest::write(
                    ClientId(c),
                    RequestId(r),
                    Bytes::from(key),
                    Bytes::from(v.clone()),
                ),
                None => ClientRequest::read(ClientId(c), RequestId(r), Bytes::from(key)),
            };
            req.seq = seq;
            req.last_committed = lc;
            if fast {
                req.read_mode = ReadMode::FastPath {
                    switch: SwitchId(1),
                };
            }
            req
        })
}

proptest! {
    /// Wire codec: encode → decode is the identity for request packets.
    #[test]
    fn wire_roundtrip_requests(req in arb_request()) {
        let pkt: Packet<u64> = Packet::new(
            NodeId::Client(req.client),
            NodeId::Switch(SwitchId(1)),
            PacketBody::Request(req),
        );
        let frame = encode_frame(&pkt).unwrap();
        let (decoded, used) = decode_frame::<Packet<u64>>(&frame).unwrap().unwrap();
        prop_assert_eq!(decoded, pkt);
        prop_assert_eq!(used, frame.len());
    }

    /// Wire codec: decoding never panics on arbitrary bytes (errors are
    /// returned, not thrown).
    #[test]
    fn wire_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame::<Packet<u64>>(&bytes);
    }

    /// The multi-stage hash table agrees with a reference map under any
    /// operation sequence that respects the switch's usage contract:
    /// sequence numbers are globally increasing (Algorithm 1 stamps them
    /// from one counter) and deletions carry the sequence number of an
    /// admitted write. A present entry always reports the largest pending
    /// seq; absent entries (or dropped inserts) report nothing.
    #[test]
    fn table_matches_oracle(ops in prop::collection::vec(
        (0u8..3, 0u32..24), 1..300
    )) {
        let mut table = harmonia::switch::MultiStageHashTable::new(TC {
            stages: 2,
            slots_per_stage: 8,
            entry_bytes: 8,
        });
        // Oracle: obj -> seq for entries the table ACCEPTED.
        let mut oracle: HashMap<u32, SwitchSeq> = HashMap::new();
        let mut next = 0u64;
        for (kind, obj_raw) in ops {
            let obj = ObjectId(obj_raw);
            match kind {
                0 => {
                    next += 1;
                    let seq = SwitchSeq::new(SwitchId(1), next);
                    if table.insert(obj, seq) {
                        oracle.insert(obj_raw, seq);
                    }
                    // On drop: the table genuinely has no room; the oracle
                    // keeps whatever it had.
                }
                1 => {
                    let got = table.search(obj);
                    prop_assert_eq!(got, oracle.get(&obj_raw).copied(),
                        "search mismatch for {:?}", obj);
                }
                _ => {
                    // Completion for the object's admitted write, if any.
                    if let Some(&seq) = oracle.get(&obj_raw) {
                        table.delete(obj, seq);
                        oracle.remove(&obj_raw);
                    }
                }
            }
        }
        // Final occupancy can exceed the oracle only via duplicate stage
        // copies, never the reverse.
        prop_assert!(table.occupancy() >= oracle.len());
    }

    /// Conflict-detector invariant: an object with an uncommitted write is
    /// never offered the fast path (P2's precondition at the switch). The
    /// driver respects the protocol's write-order rule: writes complete in
    /// global sequence order — the §5.2 premise behind lazy scrubbing.
    #[test]
    fn dirty_objects_never_fast_path(ops in prop::collection::vec(
        (prop::bool::ANY, 0u32..16), 1..120
    )) {
        let mut det = harmonia::switch::ConflictDetector::new(ConflictConfig {
            switch_id: SwitchId(1),
            table: TC { stages: 3, slots_per_stage: 32, entry_bytes: 8 },
        });
        // Globally ordered pending writes (seq, obj): completions pop from
        // the front, exactly as an in-order replication protocol commits.
        let mut pending: Vec<(SwitchSeq, u32)> = Vec::new();
        for (is_write, obj_raw) in ops {
            let obj = ObjectId(obj_raw);
            if is_write {
                if let WriteDecision::Stamped(seq) = det.process_write(obj) {
                    pending.push((seq, obj_raw));
                }
            } else if !pending.is_empty() {
                let (seq, o) = pending.remove(0);
                det.process_completion(WriteCompletion {
                    obj: ObjectId(o),
                    seq,
                });
            }
            // Check the invariant on every object with pending writes.
            let mut dirty: Vec<u32> = pending.iter().map(|&(_, o)| o).collect();
            dirty.dedup();
            for o in dirty {
                let decision = det.process_read(ObjectId(o));
                prop_assert_eq!(
                    decision,
                    harmonia::switch::ReadDecision::Normal,
                    "object {} has pending writes but got fast path", o
                );
            }
        }
    }

    /// Zipf sampling is a valid distribution: samples stay in range, the
    /// pmf is strictly rank-ordered (a deterministic property — sampled
    /// counts at low theta are too noisy to compare pointwise), and the pmf
    /// sums to one.
    #[test]
    fn zipf_is_well_formed(n in 2usize..200, theta in 0.1f64..1.5) {
        let z = harmonia::workload::Zipf::new(n, theta);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        use rand::SeedableRng;
        for _ in 0..500 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        prop_assert!(z.pmf(0) > z.pmf(n / 2) || n / 2 == 0);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Sequential (non-overlapping) register histories generated from a real
    /// register are always accepted by the checker.
    #[test]
    fn checker_accepts_sequential_histories(ops in prop::collection::vec(
        (prop::bool::ANY, 0u8..4), 1..30
    )) {
        use harmonia::verify::{check_key_history, Action, OpRecord};
        let mut value: Option<Bytes> = None;
        let mut t = 0u64;
        let mut history = Vec::new();
        for (i, (is_write, v)) in ops.into_iter().enumerate() {
            t += 10;
            let action = if is_write {
                let new = Bytes::from(format!("v{v}-{i}"));
                value = Some(new.clone());
                Action::Write(new)
            } else {
                Action::Read(value.clone())
            };
            history.push(OpRecord {
                client: 1,
                key: Bytes::from_static(b"k"),
                invoke: t,
                complete: t + 5,
                action,
            });
        }
        prop_assert!(check_key_history(&history).is_ok());
    }

    /// Corrupting one read in a sequential history to a never-written value
    /// is always caught.
    #[test]
    fn checker_rejects_corrupted_reads(n_writes in 1usize..10) {
        use harmonia::verify::{check_key_history, Action, OpRecord};
        let mut history = Vec::new();
        for i in 0..n_writes {
            history.push(OpRecord {
                client: 1,
                key: Bytes::from_static(b"k"),
                invoke: (i as u64) * 10,
                complete: (i as u64) * 10 + 5,
                action: Action::Write(Bytes::from(format!("v{i}"))),
            });
        }
        history.push(OpRecord {
            client: 2,
            key: Bytes::from_static(b"k"),
            invoke: (n_writes as u64) * 10,
            complete: (n_writes as u64) * 10 + 5,
            action: Action::Read(Some(Bytes::from_static(b"never-written"))),
        });
        prop_assert!(check_key_history(&history).is_err());
    }

    /// SwitchSeq ordering is a total lexicographic order: sorting any batch
    /// puts every earlier-switch number before every later-switch number.
    #[test]
    fn switch_seq_total_order(mut seqs in prop::collection::vec(arb_seq(), 2..50)) {
        seqs.sort();
        for w in seqs.windows(2) {
            prop_assert!(w[0] <= w[1]);
            if w[0].switch_id < w[1].switch_id {
                // Different incarnations: order decided by switch id alone.
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    /// `ObjectId::from_key` is stable across calls and agrees with the
    /// documented FNV-1a parameters (offset 0x811c9dc5, prime 0x01000193):
    /// the id is part of the wire contract between clients and the switch,
    /// so it may never drift.
    #[test]
    fn object_id_from_key_is_fnv1a(key in prop::collection::vec(any::<u8>(), 0..64)) {
        let first = ObjectId::from_key(&key);
        let second = ObjectId::from_key(&key);
        prop_assert_eq!(first, second, "from_key must be a pure function");

        let mut reference: u32 = 0x811c_9dc5;
        for &b in &key {
            reference ^= u32::from(b);
            reference = reference.wrapping_mul(0x0100_0193);
        }
        prop_assert_eq!(first, ObjectId(reference), "FNV-1a constants drifted");
    }

    /// SpineSwitch memory accounting is monotone in the group count: each
    /// added group grows `memory_bytes` by exactly the per-group table
    /// footprint, duplicates change nothing, and the total always equals
    /// `group_count × per_group` (§6.3's budget arithmetic).
    #[test]
    fn spine_memory_monotone_in_group_count(group_ids in prop::collection::vec(0u32..48, 1..60)) {
        let table = TC { stages: 2, slots_per_stage: 16, entry_bytes: 8 };
        let per_group = table.stages * table.slots_per_stage * table.entry_bytes;
        let mut spine = Spine::new(SwitchId(1), table);
        let mut prev = spine.memory_bytes();
        prop_assert_eq!(prev, 0);
        for g in group_ids {
            let added = spine.add_group(GId(g));
            let now = spine.memory_bytes();
            prop_assert!(now >= prev, "memory shrank on add");
            prop_assert_eq!(now - prev, if added { per_group } else { 0 });
            prop_assert_eq!(now, spine.group_count() * per_group);
            prev = now;
        }
    }

    /// Removing a group reclaims exactly its bytes, and removal of unknown
    /// groups reclaims nothing — tracked against a model set under any
    /// add/remove interleaving.
    #[test]
    fn spine_group_removal_reclaims_bytes(ops in prop::collection::vec(
        (prop::bool::ANY, 0u32..24), 1..120
    )) {
        let table = TC { stages: 3, slots_per_stage: 8, entry_bytes: 8 };
        let per_group = table.stages * table.slots_per_stage * table.entry_bytes;
        let mut spine = Spine::new(SwitchId(1), table);
        let mut model = std::collections::BTreeSet::new();
        for (add, g) in ops {
            if add {
                prop_assert_eq!(spine.add_group(GId(g)), model.insert(g));
            } else {
                let before = spine.memory_bytes();
                let removed = spine.remove_group(GId(g));
                prop_assert_eq!(removed, model.remove(&g));
                let reclaimed = before - spine.memory_bytes();
                prop_assert_eq!(reclaimed, if removed { per_group } else { 0 });
            }
            prop_assert_eq!(spine.group_count(), model.len());
            prop_assert_eq!(spine.memory_bytes(), model.len() * per_group);
        }
    }

    /// Per-group sequence spaces never interleave: however writes to many
    /// groups interleave at the spine switch, each group's stamped sequence
    /// numbers are exactly 1, 2, 3, … in its own space (dense and strictly
    /// increasing), all under the one shared incarnation id.
    #[test]
    fn spine_sequence_spaces_never_interleave(writes in prop::collection::vec(
        (0u32..6, 0u32..32), 1..200
    )) {
        let table = TC { stages: 3, slots_per_stage: 64, entry_bytes: 8 };
        let mut spine = Spine::new(SwitchId(7), table);
        for g in 0..6 {
            spine.add_group(GId(g));
        }
        let mut per_group_count = [0u64; 6];
        for (g, obj) in writes {
            match spine.process_write(GId(g), ObjectId(obj)) {
                Some(harmonia::switch::WriteDecision::Stamped(seq)) => {
                    per_group_count[g as usize] += 1;
                    prop_assert_eq!(seq.switch_id, SwitchId(7));
                    prop_assert_eq!(
                        seq, SwitchSeq::new(SwitchId(7), per_group_count[g as usize]),
                        "group {} stamped out of its own dense space", g
                    );
                }
                Some(harmonia::switch::WriteDecision::Dropped) => {
                    // A full table still consumes the number (Algorithm 1
                    // stamps before inserting).
                    per_group_count[g as usize] += 1;
                }
                None => prop_assert!(false, "hosted group rejected a write"),
            }
        }
    }

    /// The parallel live data plane's accounting contract: tearing a
    /// multi-group `SwitchCore` into per-worker `GroupCore`s and driving
    /// each group's packets through its own core (the per-group pipeline
    /// model) yields exactly the per-group and aggregate stats, memory,
    /// dirty-set occupancy, and fast-path gating that the monolithic
    /// single-actor core reports for the same packet sequence.
    #[test]
    fn split_group_cores_match_monolith_accounting(
        groups in 1usize..5,
        ops in prop::collection::vec((0u32..64, 0u8..10), 1..150),
    ) {
        use harmonia::core::switch_actor::{SwitchActorConfig, SwitchMode};
        use harmonia::core::{Msg, SwitchCore};
        use rand::SeedableRng;

        let cfg = SwitchActorConfig {
            incarnation: SwitchId(1),
            mode: SwitchMode::Harmonia,
            protocol: ProtocolKind::Chain,
            replicas: 3,
            table: TC { stages: 2, slots_per_stage: 16, entry_bytes: 8 },
            sweep_interval: None,
        };
        let memberships: Vec<Vec<ReplicaId>> = (0..groups)
            .map(|g| (0..3u32).map(|i| ReplicaId(g as u32 * 3 + i)).collect())
            .collect();
        let mut mono = SwitchCore::new_sharded(cfg, memberships.clone());
        let mut split = SwitchCore::new_sharded(cfg, memberships).into_group_cores();
        let shards = ShardMap::new(groups);
        let me = NodeId::Switch(SwitchId(1));
        let client = NodeId::Client(ClientId(1));
        // Deliberately *different* RNG streams: routing randomness picks
        // fast-path replicas, never accounting outcomes.
        let mut rng_mono = rand::rngs::SmallRng::seed_from_u64(1);
        let mut rngs: Vec<rand::rngs::SmallRng> = (0..groups)
            .map(|g| rand::rngs::SmallRng::seed_from_u64(1000 + g as u64))
            .collect();
        let mut out = Vec::new();
        let mut pending: Vec<WriteCompletion> = Vec::new();
        for (i, (obj_raw, action)) in ops.into_iter().enumerate() {
            let key = Bytes::from(format!("key-{obj_raw}"));
            let rid = RequestId(i as u64);
            let body: PacketBody<harmonia::replication::messages::ProtocolMsg> = match action {
                0..=3 => PacketBody::Request(ClientRequest::write(
                    ClientId(1), rid, key, Bytes::from_static(b"v"),
                )),
                4..=7 => PacketBody::Request(ClientRequest::read(ClientId(1), rid, key)),
                _ => match pending.pop() {
                    Some(c) => PacketBody::Completion(c),
                    None => PacketBody::Request(ClientRequest::read(ClientId(1), rid, key)),
                },
            };
            let obj = match &body {
                PacketBody::Request(r) => r.obj,
                PacketBody::Completion(c) => c.obj,
                _ => unreachable!(),
            };
            let g = shards.shard_of(obj) as usize;
            out.clear();
            mono.handle(Instant::ZERO, me, Msg::new(client, me, body.clone()), &mut rng_mono, &mut out);
            // Capture the stamped seq of a forwarded write so a later op
            // can complete it. The split run sees the identical stamp:
            // per-group detector state evolves in lockstep with the
            // monolith's, which is the point being proven.
            if let Some((_, m)) = out.first() {
                if let PacketBody::Request(req) = &m.body {
                    if req.op == OpKind::Write {
                        if let Some(seq) = req.seq {
                            pending.push(WriteCompletion { obj: req.obj, seq });
                        }
                    }
                }
            }
            let mut split_out = Vec::new();
            split[g].handle(Instant::ZERO, me, Msg::new(client, me, body), &mut rngs[g], &mut split_out);
            prop_assert_eq!(
                out.len(), split_out.len(),
                "forward fan-out must match (dropped writes drop in both)"
            );
        }
        // Per-group accounting is identical…
        for core in &split {
            let g = core.group();
            prop_assert_eq!(mono.group_stats(g).unwrap(), core.stats());
            let mono_det = mono.group_detector(g).unwrap();
            prop_assert_eq!(core.observe().fast_path_enabled, mono_det.fast_path_enabled());
            prop_assert_eq!(core.observe().dirty_len, mono_det.dirty_len());
            prop_assert_eq!(core.memory_bytes(), mono.group_memory_bytes(g).unwrap());
        }
        // …and the aggregate-only view folds to the monolith's totals.
        let view = harmonia::switch::SpineView::new(
            split.iter().map(|c| c.observe()).collect(),
        );
        prop_assert_eq!(view.stats(), mono.stats());
        prop_assert_eq!(view.memory_bytes(), mono.memory_bytes());
        let split_sum: usize = split.iter().map(|c| c.memory_bytes()).sum();
        prop_assert_eq!(split_sum, mono.memory_bytes());
    }

    /// Wire codec: encode → decode is the identity for **every**
    /// `PacketBody` variant, not only requests — each generated case
    /// round-trips all five variants built from the same components.
    #[test]
    fn wire_roundtrip_every_packet_body(
        req in arb_request(),
        reply in arb_reply(),
        completion in arb_completion(),
        proto in any::<u64>(),
        control in arb_control(),
    ) {
        let bodies: Vec<PacketBody<u64>> = vec![
            PacketBody::Request(req),
            PacketBody::Reply(reply),
            PacketBody::Completion(completion),
            PacketBody::Protocol(proto),
            PacketBody::Control(control),
        ];
        for body in bodies {
            let pkt: Packet<u64> = Packet::new(
                NodeId::Switch(SwitchId(1)),
                NodeId::Replica(ReplicaId(0)),
                body,
            );
            let frame = encode_frame(&pkt).unwrap();
            let (decoded, used) = decode_frame::<Packet<u64>>(&frame).unwrap().unwrap();
            prop_assert_eq!(decoded, pkt);
            prop_assert_eq!(used, frame.len());
        }
    }

    /// The real wire type of the UDP driver: `Packet<ProtocolMsg>` — every
    /// replica↔replica message round-trips through the codec too.
    #[test]
    fn wire_roundtrip_protocol_packets(
        op_req in arb_request(),
        variant in 0u8..6,
        seq in arb_seq(),
        upto in 0u64..1000,
    ) {
        use harmonia::replication::messages::{
            ChainMsg, NopaxosMsg, PbMsg, ProtocolMsg, VrMsg, WriteOp,
        };
        let op = WriteOp {
            seq,
            obj: op_req.obj,
            key: op_req.key.clone(),
            value: op_req.value.clone().unwrap_or_default(),
            client: op_req.client,
            request: op_req.request,
        };
        let msg = match variant {
            0 => ProtocolMsg::Pb(PbMsg::Update(op)),
            1 => ProtocolMsg::Chain(ChainMsg::Down(op)),
            2 => ProtocolMsg::Vr(VrMsg::Prepare { view: upto, op_num: upto + 1, op, commit: upto }),
            3 => ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced { session: 1, oum_seq: upto, op }),
            4 => ProtocolMsg::Nopaxos(NopaxosMsg::GapReply { session: 1, oum_seq: upto, op: Some(op) }),
            _ => ProtocolMsg::Nopaxos(NopaxosMsg::Sync { session: 2, upto }),
        };
        let pkt: Packet<ProtocolMsg> = Packet::new(
            NodeId::Replica(ReplicaId(0)),
            NodeId::Replica(ReplicaId(1)),
            PacketBody::Protocol(msg),
        );
        let frame = encode_frame(&pkt).unwrap();
        let (decoded, used) = decode_frame::<Packet<ProtocolMsg>>(&frame).unwrap().unwrap();
        prop_assert_eq!(decoded, pkt);
        prop_assert_eq!(used, frame.len());
    }

    /// Untrusted-input hardening, the UDP driver's threat model: take a
    /// valid encoded frame of ANY `PacketBody` variant, truncate it
    /// anywhere and flip arbitrary bytes (including the length prefix and
    /// discriminants) — decoding must return, never panic, for both the
    /// test payload and the real `ProtocolMsg` payload.
    #[test]
    fn wire_decode_total_on_mutated_frames(
        req in arb_request(),
        reply in arb_reply(),
        completion in arb_completion(),
        control in arb_control(),
        mutations in prop::collection::vec((0usize..512, 0u8..=255), 0..8),
        cut in 0usize..513,
    ) {
        let bodies: Vec<PacketBody<u64>> = vec![
            PacketBody::Request(req),
            PacketBody::Reply(reply),
            PacketBody::Completion(completion),
            PacketBody::Protocol(7),
            PacketBody::Control(control),
        ];
        for body in bodies {
            let pkt: Packet<u64> = Packet::new(
                NodeId::Client(ClientId(1)),
                NodeId::Switch(SwitchId(1)),
                body,
            );
            let mut bytes = encode_frame(&pkt).unwrap().to_vec();
            for &(idx, val) in &mutations {
                let len = bytes.len();
                bytes[idx % len] = val;
            }
            bytes.truncate(cut.min(bytes.len()));
            // Must return (any of Ok(Some)/Ok(None)/Err), never panic, for
            // both payload decoders.
            let _ = decode_frame::<Packet<u64>>(&bytes);
            let _ = decode_frame::<Packet<harmonia::replication::messages::ProtocolMsg>>(&bytes);
        }
    }

    /// A declared length can never make the decoder allocate past the
    /// shared `MAX_FRAME_BYTES` bound: any frame or field length claiming
    /// more is rejected up front with `OversizedField`.
    #[test]
    fn wire_oversized_declared_lengths_rejected(
        claimed in (harmonia::types::MAX_FRAME_BYTES as u32 + 1)..=u32::MAX,
    ) {
        use harmonia::types::TypeError;
        // Oversized frame prefix.
        let mut frame = Vec::new();
        frame.extend_from_slice(&claimed.to_le_bytes());
        frame.extend_from_slice(&[0u8; 16]);
        prop_assert!(matches!(
            decode_frame::<Packet<u64>>(&frame),
            Err(TypeError::OversizedField { field: "frame", .. })
        ));
        // Valid-looking frame whose inner `Bytes` field claims too much.
        let mut inner = Vec::new();
        inner.extend_from_slice(&8u32.to_le_bytes()); // frame length: 8
        inner.extend_from_slice(&claimed.to_le_bytes()); // bytes field length
        inner.extend_from_slice(&[0u8; 4]);
        prop_assert!(matches!(
            decode_frame::<Bytes>(&inner),
            Err(TypeError::OversizedField { field: "bytes", .. })
        ));
    }

    /// Encode-side symmetry: a packet whose payload would overflow one
    /// frame (= one UDP datagram) is an error, never a truncated frame.
    #[test]
    fn wire_encode_rejects_oversized_packets(extra in 0usize..4096) {
        use harmonia::types::TypeError;
        let huge = Bytes::from(vec![0x42u8; harmonia::types::MAX_FRAME_BYTES + extra]);
        let req = ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], huge);
        let pkt: Packet<u64> = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Switch(SwitchId(1)),
            PacketBody::Request(req),
        );
        prop_assert!(matches!(
            encode_frame(&pkt),
            Err(TypeError::OversizedField { field: "frame", .. })
        ));
    }
}
