//! Sharded multi-group deployments (§6.3): N replica groups behind one
//! spine switch, keyspace partitioned by the shard map. Linearizability is
//! per key, so it must survive sharding untouched — checked end to end in
//! the deterministic sim and exercised at scale in the live driver.

mod common;

use common::{assert_converged, assert_linearizable, Scenario};
use harmonia::prelude::*;

fn sharded(protocol: ProtocolKind, harmonia: bool, groups: usize) -> DeploymentSpec {
    DeploymentSpec::new()
        .protocol(protocol)
        .harmonia(harmonia)
        .groups(groups)
        .replicas(3)
}

/// The acceptance scenario: a 4-group chain deployment serves a concurrent
/// closed-loop workload; the recorded history passes the Wing–Gong checker,
/// each group's replicas converge, and shards never bleed into each other.
#[test]
fn four_group_chain_harmonia_is_linearizable() {
    let scenario = Scenario {
        deployment: sharded(ProtocolKind::Chain, true, 4),
        clients: 4,
        ops_per_client: 60,
        keys: 24,
        write_ratio: 0.4,
        seed: 201,
    };
    let outcome = scenario.run();
    assert_eq!(outcome.incomplete, 0, "ops gave up");
    assert_linearizable(outcome.records, "4-group Harmonia(CR)");
    assert_converged(&outcome.world, &scenario.deployment, scenario.keys);

    // All four groups actually served traffic through the one spine switch,
    // under per-group sequence spaces and shared memory accounting.
    let sw: &SwitchActor = outcome
        .world
        .actor(scenario.deployment.switch_addr())
        .expect("spine switch");
    assert_eq!(sw.group_count(), 4);
    let mut groups_with_writes = 0;
    for g in 0..4 {
        let stats = sw.group_stats(GroupId(g)).expect("hosted group");
        if stats.writes_forwarded > 0 {
            groups_with_writes += 1;
        }
    }
    assert!(
        groups_with_writes >= 3,
        "only {groups_with_writes}/4 groups saw writes — sharding is not spreading"
    );
    let per_group = sw.group_memory_bytes(GroupId(0)).unwrap();
    assert_eq!(sw.memory_bytes(), 4 * per_group);
}

/// Every protocol that runs under Harmonia also runs sharded; baselines
/// (and CRAQ) shard too — the spine switch routes, the groups do the rest.
#[test]
fn every_protocol_is_linearizable_across_two_groups() {
    for (protocol, harmonia) in [
        (ProtocolKind::PrimaryBackup, true),
        (ProtocolKind::Chain, true),
        (ProtocolKind::Chain, false),
        (ProtocolKind::Craq, false),
        (ProtocolKind::Vr, true),
        (ProtocolKind::Nopaxos, true),
    ] {
        let scenario = Scenario {
            deployment: sharded(protocol, harmonia, 2),
            clients: 3,
            ops_per_client: 40,
            keys: 12,
            write_ratio: 0.35,
            seed: 211,
        };
        let outcome = scenario.run();
        let context = format!("2-group {protocol:?} harmonia={harmonia}");
        assert_eq!(outcome.incomplete, 0, "{context}: ops gave up");
        assert_linearizable(outcome.records, &context);
        assert_converged(&outcome.world, &scenario.deployment, scenario.keys);
    }
}

/// Per-group sequence spaces: groups stamp independently, so a group's
/// writes are dense in its own space no matter how traffic interleaves at
/// the spine switch.
#[test]
fn group_fast_paths_arm_independently() {
    use harmonia::core::client::OpSpec;

    let cfg = sharded(ProtocolKind::Chain, true, 4);
    let mut sim = cfg.build_sim();
    // Write (and thereby arm) only the groups that serve these two keys:
    // probe until the second key lands on a different shard than the first.
    let map = cfg.shard_map();
    let key_a = "key-0".to_string();
    let ga = map.shard_of_key(key_a.as_bytes());
    let key_b = (1..)
        .map(|i| format!("key-{i}"))
        .find(|k| map.shard_of_key(k.as_bytes()) != ga)
        .expect("some key lands on another shard");
    let gb = map.shard_of_key(key_b.as_bytes());
    let plan = vec![
        OpSpec::write(key_a.clone(), "a"),
        OpSpec::write(key_b.clone(), "b"),
        OpSpec::read(key_a),
        OpSpec::read(key_b),
    ];
    sim.add_closed_loop_client(ClientId(1), plan, Duration::from_millis(5));
    sim.run_until(Instant::ZERO + Duration::from_millis(5));
    for g in 0..4u32 {
        let armed = sim
            .group_fast_path_enabled(GroupId(g))
            .expect("hosted group");
        assert_eq!(
            armed,
            g == ga || g == gb,
            "group {g}: fast path should arm iff its shard committed a write"
        );
    }
}

/// The live (threaded) acceptance scenario: a 4-group sharded cluster
/// serves well over 1000 distinct keys correctly, spreading them over every
/// group.
#[test]
fn sharded_live_cluster_serves_a_thousand_keys() {
    use bytes::Bytes;

    let cfg = sharded(ProtocolKind::Chain, true, 4);
    let cluster = cfg.spawn_live();
    let mut writers: Vec<_> = (0..4)
        .map(|t| {
            let mut client = cluster.client();
            std::thread::spawn(move || {
                for i in 0..300 {
                    let k = t * 300 + i;
                    client
                        .set(format!("key-{k}"), format!("value-{k}"))
                        .expect("write");
                }
            })
        })
        .collect();
    for w in writers.drain(..) {
        w.join().unwrap();
    }
    let mut reader = cluster.client();
    for k in (0..1200).rev() {
        assert_eq!(
            reader.get(format!("key-{k}")).unwrap(),
            Some(Bytes::from(format!("value-{k}"))),
            "key-{k}"
        );
    }
    // Every group served part of the keyspace, and the spine accounts for
    // all four dirty sets.
    let map = cfg.shard_map();
    for g in 0..4u32 {
        let stats = cluster.group_stats(GroupId(g)).expect("live group stats");
        let expected: u64 = (0..1200)
            .filter(|k| map.shard_of_key(format!("key-{k}").as_bytes()) == g)
            .count() as u64;
        assert!(expected > 0, "degenerate shard map");
        assert!(
            stats.writes_forwarded >= expected,
            "group {g} forwarded {} writes for {expected} owned keys",
            stats.writes_forwarded
        );
        assert_eq!(cluster.group_fast_path_enabled(GroupId(g)), Some(true));
    }
    let per_group = cfg.table.stages * cfg.table.slots_per_stage * cfg.table.entry_bytes;
    assert_eq!(cluster.switch_memory_bytes(), Some(4 * per_group));
    cluster.shutdown();
}
