//! The UDP driver under a genuinely asynchronous network.
//!
//! Every packet of these deployments crosses a real loopback `UdpSocket`
//! through the wire codec, and the spec's link fault probabilities are
//! injected by `harmonia-net`'s seeded `FaultyTransport` at the client and
//! switch sockets (replica↔replica stays clean — the same envelope the
//! simulator's §5.2 fault sweeps preserve). Every per-key history goes
//! through the Wing–Gong linearizability checker, and the fault counters
//! prove the adversary actually fired.

// Wall-clock reads are deliberate here: live-cluster test: real-time deadlines.
#![allow(clippy::disallowed_methods)]

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use bytes::Bytes;
use common::{assert_linearizable_traced, collect_records, make_plans, Op};
use harmonia::prelude::*;

fn adversarial_link(drop: f64, duplicate: f64, reorder: f64) -> LinkConfig {
    LinkConfig {
        drop_prob: drop,
        duplicate_prob: duplicate,
        reorder_prob: reorder,
        ..LinkConfig::ideal(Duration::from_micros(5))
    }
}

/// The ISSUE's headline scenario: a sharded UDP cluster with 5% loss plus
/// duplication plus reordering at the socket boundary. Closed-loop clients
/// retry through it; every key a completed operation touched must stay
/// linearizable (keys of abandoned ops are excluded — an abandoned write
/// may or may not have landed), and all three fault classes must actually
/// have fired.
#[test]
fn udp_cluster_survives_loss_duplication_reordering() {
    let spec = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .groups(2)
        .seed(1011)
        .link(adversarial_link(0.05, 0.05, 0.05));
    let mut cluster = spec.spawn_udp();
    let plans = make_plans(3, 30, 8, 0.35, 1011);
    let histories = cluster.run_plans(plans);

    let completed: usize = histories.iter().flatten().filter(|r| r.ok).count();
    assert!(
        completed >= 60,
        "only {completed}/90 ops completed under 5% loss"
    );
    let (records, _incomplete) = collect_records(&histories);
    assert_linearizable_traced(
        records,
        &cluster.trace_events(),
        "UDP cluster under loss+duplication+reorder",
    );

    let (dropped, duplicated, reordered) = cluster.fault_counts();
    assert!(
        dropped > 0 && duplicated > 0 && reordered > 0,
        "adversary never fired: dropped={dropped} duplicated={duplicated} reordered={reordered}"
    );
    let stats = cluster.switch_stats().expect("switch is up");
    assert!(stats.writes_forwarded > 0, "{stats:?}");
    cluster.shutdown();
}

/// Exactly-once under duplication (no loss, no reordering — isolate the one
/// fault class): a duplicated write datagram is sequenced *twice* by the
/// switch, so the replicas' exactly-once session layer must absorb the
/// second execution, and NOPaxos clients — which need a quorum of
/// acknowledgements per write — must count *distinct* repliers (the PR 4
/// rule), since a deduplicated re-send is indistinguishable from a fresh
/// ack by request id alone. The observable: heavy duplication, and yet the
/// final value of every key is exactly its last write.
#[test]
fn udp_duplicated_writes_absorbed_by_replica_session_dedup() {
    let spec = DeploymentSpec::new()
        .protocol(ProtocolKind::Nopaxos)
        .seed(77)
        .link(adversarial_link(0.0, 0.25, 0.0));
    let cluster = spec.spawn_udp();
    let mut client = cluster.client();
    let writes = 40u32;
    for i in 0..writes {
        client
            .set(format!("k{}", i % 8), format!("v{i}"))
            .expect("write under duplication");
    }
    for k in 0..8u32 {
        // Last write to key k was at the largest i ≡ k (mod 8).
        let last = (0..writes).filter(|i| i % 8 == k).max().unwrap();
        assert_eq!(
            client.get(format!("k{k}")).unwrap(),
            Some(Bytes::from(format!("v{last}"))),
            "duplicate write re-executed out of order on k{k}"
        );
    }
    let (dropped, duplicated, reordered) = cluster.fault_counts();
    assert!(duplicated > 0, "duplication never fired");
    assert_eq!((dropped, reordered), (0, 0), "only duplication configured");
    // Duplicated write datagrams really were sequenced again by the switch
    // (more forwarded writes than distinct writes) — the dedup above was
    // load-bearing, not vacuous.
    let stats = cluster.switch_stats().expect("switch is up");
    assert!(
        stats.writes_forwarded > u64::from(writes),
        "no duplicate write was ever sequenced: {stats:?}"
    );
    cluster.shutdown();
}

/// A closed-loop multi-client NOPaxos run under heavy duplication, full
/// Wing–Gong check: the distinct-replier quorum rule holds when original
/// acks, duplicated executions, and cached re-sends interleave. (Loss stays
/// off: the per-socket adversary cannot spare the switch→leader leg, and
/// NOPaxos's gap recovery only covers follower-side multicast loss — the
/// same envelope the sim fault sweep documents and preserves.)
#[test]
fn udp_nopaxos_quorum_counts_distinct_repliers_under_faults() {
    let spec = DeploymentSpec::new()
        .protocol(ProtocolKind::Nopaxos)
        .seed(313)
        .link(adversarial_link(0.0, 0.15, 0.0));
    let mut cluster = spec.spawn_udp();
    let plans = make_plans(3, 25, 6, 0.4, 313);
    let histories = cluster.run_plans(plans);
    let completed: usize = histories.iter().flatten().filter(|r| r.ok).count();
    assert!(completed >= 70, "only {completed}/75 ops completed");
    let (records, _incomplete) = collect_records(&histories);
    assert_linearizable_traced(
        records,
        &cluster.trace_events(),
        "UDP NOPaxos under duplication+loss",
    );
    let (_, duplicated, _) = cluster.fault_counts();
    assert!(duplicated > 0, "duplication never fired");
    cluster.shutdown();
}

/// One recorded operation stream from a free-running worker (the
/// live_parallel harness, pointed at a UDP cluster).
fn run_worker(
    mut client: LiveClient,
    t: u32,
    keys: usize,
    epoch: StdInstant,
    stop: Arc<AtomicBool>,
) -> Vec<RecordedOp> {
    let stamp = |at: StdInstant| {
        Instant::ZERO + Duration::from_nanos(at.duration_since(epoch).as_nanos() as u64)
    };
    let key_pool: Vec<Bytes> = (0..keys).map(|k| Bytes::from(format!("key-{k}"))).collect();
    let mut records = Vec::new();
    let mut i = 0u32;
    while !stop.load(Ordering::Relaxed) {
        let key = key_pool[(i as usize * 5 + t as usize) % keys].clone();
        let invoked = StdInstant::now();
        if i.is_multiple_of(3) {
            let value = Bytes::from(format!("t{t}-i{i}"));
            let ok = client.set(key.clone(), value.clone()).is_ok();
            records.push(RecordedOp {
                kind: OpKind::Write,
                key,
                value: Some(value),
                invoked: stamp(invoked),
                completed: stamp(StdInstant::now()),
                result: None,
                ok,
            });
        } else {
            let (result, ok) = match client.get(key.clone()) {
                Ok(v) => (v, true),
                Err(_) => (None, false),
            };
            records.push(RecordedOp {
                kind: OpKind::Read,
                key,
                value: None,
                invoked: stamp(invoked),
                completed: stamp(StdInstant::now()),
                result,
                ok,
            });
        }
        i += 1;
        // Pace the worker so per-key histories stay inside the checker's
        // exhaustive-search budget.
        std::thread::sleep(StdDuration::from_millis(1));
    }
    records
}

/// §5.3 over real sockets: concurrent workers while the whole pipeline
/// fleet is killed (its sockets leave the address book) and a replacement
/// fleet comes up on *fresh* sockets under a new incarnation. Histories
/// must stay linearizable across the outage and the replacement must serve
/// the fast path again.
#[test]
fn udp_kill_and_replace_mid_load_stays_linearizable() {
    let spec = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .groups(2)
        .seed(55);
    let mut cluster = spec.spawn_udp();
    let epoch = StdInstant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let keys = 24usize;

    let workers: Vec<_> = (0..4u32)
        .map(|t| {
            let client = cluster.client();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_worker(client, t, keys, epoch, stop))
        })
        .collect();

    std::thread::sleep(StdDuration::from_millis(60));
    cluster.kill_switch();
    assert_eq!(cluster.switch_stats(), None, "no fleet, no stats");
    std::thread::sleep(StdDuration::from_millis(30));
    cluster.replace_switch(SwitchId(2));
    std::thread::sleep(StdDuration::from_millis(120));
    stop.store(true, Ordering::Relaxed);
    let histories: Vec<Vec<RecordedOp>> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    assert_eq!(cluster.switch_incarnation(), Some(SwitchId(2)));
    let completed: usize = histories.iter().flatten().filter(|r| r.ok).count();
    assert!(completed > 40, "only {completed} ops completed");
    let (records, _incomplete) = collect_records(&histories);
    assert!(!records.is_empty(), "nothing survived to check");
    assert_linearizable_traced(
        records,
        &cluster.trace_events(),
        "UDP load across switch replacement",
    );

    // One committed write per group re-arms that group's fast path under
    // the new incarnation (first own-id WRITE-COMPLETION rule).
    let mut client = cluster.client();
    for key in spec.group_covering_keys() {
        client.set(key, "1").unwrap();
    }
    for g in 0..2u32 {
        assert_eq!(
            cluster.group_fast_path_enabled(GroupId(g)),
            Some(true),
            "group {g} fast path must re-arm under incarnation 2"
        );
    }
    cluster.shutdown();
}

/// Client sockets must not leak address-book entries: every dropped client
/// deregisters itself, so the book's unicast section returns to its
/// replica-only baseline. (Before the fix, each `client()` grew the book
/// forever — every send re-resolved against an ever-larger directory.)
#[test]
fn udp_dropped_clients_leave_the_address_book() {
    let spec = DeploymentSpec::new().seed(23);
    let cluster = spec.spawn_udp();
    let baseline = cluster.unicast_entries();
    {
        let mut clients: Vec<LiveClient> = (0..4).map(|_| cluster.client()).collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.set(format!("k{i}"), "v").unwrap();
        }
        assert_eq!(
            cluster.unicast_entries(),
            baseline + 4,
            "each live client owns one unicast entry"
        );
    }
    assert_eq!(
        cluster.unicast_entries(),
        baseline,
        "dropped clients must deregister from the address book"
    );
    cluster.shutdown();
}

/// One recorded closed-loop plan execution (keys/values move by refcount
/// from the plan into the records). A 2 ms pace keeps per-key histories
/// inside the checker's budget and stretches the plan across the storm.
fn run_plan(mut client: LiveClient, plan: Vec<Op>, epoch: StdInstant) -> Vec<RecordedOp> {
    let stamp = |at: StdInstant| {
        Instant::ZERO + Duration::from_nanos(at.duration_since(epoch).as_nanos() as u64)
    };
    let mut records = Vec::with_capacity(plan.len());
    for op in plan {
        let invoked = StdInstant::now();
        let (result, ok) = match op.kind {
            OpKind::Read => match client.get(op.key.clone()) {
                Ok(v) => (v, true),
                Err(_) => (None, false),
            },
            OpKind::Write => {
                let value = op.value.clone().unwrap_or_default();
                (None, client.set(op.key.clone(), value).is_ok())
            }
        };
        records.push(RecordedOp {
            kind: op.kind,
            key: op.key,
            value: op.value,
            invoked: stamp(invoked),
            completed: stamp(StdInstant::now()),
            result,
            ok,
        });
        std::thread::sleep(StdDuration::from_millis(2));
    }
    records
}

/// The ISSUE's recovery storm: closed-loop clients under 5% datagram
/// loss + duplication + reordering while replicas are killed and restarted
/// one after another — every transfer byte crosses lossy UDP, the rejoining
/// replica is read-gated until its applied point passes the gate floor, and
/// every completed operation's history must stay linearizable.
#[test]
fn udp_replica_crash_recovery_storm_stays_linearizable() {
    let spec = DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .seed(909)
        .link(adversarial_link(0.05, 0.05, 0.05));
    let mut cluster = spec.spawn_udp();
    // No pre-seeding: every value the checker sees read must appear as a
    // recorded write. The 30 ms before the first kill puts real state into
    // the store, so the first transfer moves a non-trivial snapshot.
    let epoch = StdInstant::now();
    let workers: Vec<_> = make_plans(3, 40, 12, 0.35, 909)
        .into_iter()
        .map(|plan| {
            let client = cluster.client();
            std::thread::spawn(move || run_plan(client, plan, epoch))
        })
        .collect();

    // Churn two different chain positions back to back, mid-load. The
    // clients' retry budget (5 × 200 ms) rides across each outage window.
    for r in [ReplicaId(2), ReplicaId(1)] {
        std::thread::sleep(StdDuration::from_millis(30));
        cluster.kill_replica(r);
        std::thread::sleep(StdDuration::from_millis(30));
        cluster.restart_replica(r);
        // Let the snapshot + log transfer finish before the next blow.
        std::thread::sleep(StdDuration::from_millis(60));
    }
    let histories: Vec<Vec<RecordedOp>> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let completed: usize = histories.iter().flatten().filter(|r| r.ok).count();
    assert!(completed >= 100, "only {completed}/120 ops completed");
    let (records, _incomplete) = collect_records(&histories);
    assert!(!records.is_empty(), "nothing survived to check");
    assert_linearizable_traced(
        records,
        &cluster.trace_events(),
        "UDP kill/recover storm under 5% faults",
    );

    let (dropped, duplicated, reordered) = cluster.fault_counts();
    assert!(
        dropped > 0 && duplicated > 0 && reordered > 0,
        "adversary never fired: dropped={dropped} duplicated={duplicated} reordered={reordered}"
    );

    // The storm is over; the restored full group serves fresh traffic.
    let mut client = cluster.client();
    client.set(b"post-storm", b"ok").unwrap();
    assert_eq!(
        client.get(b"post-storm").unwrap(),
        Some(Bytes::from_static(b"ok"))
    );
    cluster.shutdown();
}
