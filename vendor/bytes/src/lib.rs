//! Offline-vendored subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of the `bytes` API Harmonia actually uses: cheaply
//! cloneable immutable byte buffers ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the little-endian cursor traits ([`Buf`], [`BufMut`])
//! the wire codec is written against. Semantics match the real crate for
//! this subset; anything Harmonia does not call is deliberately absent.

#![deny(unsafe_op_in_unsafe_fn)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable view into a shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a `'static` slice without copying.
    pub const fn from_static(slice: &'static [u8]) -> Self {
        Bytes {
            data: Repr::Static(slice),
            start: 0,
            end: slice.len(),
        }
    }

    /// Copy `slice` into a new shared buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `n` bytes, advancing `self` past them.
    ///
    /// Panics if `n > self.len()`, like the real crate.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(
            n <= self.len(),
            "split_to out of bounds: {} > {}",
            n,
            self.len()
        );
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Split off and return the bytes from `n` onward, truncating `self`.
    pub fn split_off(&mut self, n: usize) -> Bytes {
        assert!(
            n <= self.len(),
            "split_off out of bounds: {} > {}",
            n,
            self.len()
        );
        let tail = Bytes {
            data: self.data.clone(),
            start: self.start + n,
            end: self.end,
        };
        self.end = self.start + n;
        tail
    }

    /// A sub-view of this buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }

    /// Copy the bytes out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Reclaim the buffer for mutation if this handle is the *only*
    /// outstanding reference to it (mirrors `bytes ≥ 1.10`). Succeeds with
    /// the full backing storage — even bytes outside this view's window —
    /// so a buffer pool can recycle a whole datagram buffer once every
    /// payload slice into it has been dropped. Static views are never
    /// uniquely owned; they come back unchanged in `Err`.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        match self.data {
            Repr::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(buf) => Ok(BytesMut { buf }),
                Err(arc) => Err(Bytes {
                    data: Repr::Shared(arc),
                    start: self.start,
                    end: self.end,
                }),
            },
            Repr::Static(_) => Err(self),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable, uniquely owned byte buffer; freeze it into a [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Resize to `len` bytes, filling any growth with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        // Not `Vec::resize`: that fills through the generic per-element
        // `extend_with` loop (the memset specialization only covers
        // `vec![0; n]`), which is unusably slow for the 64KB receive
        // buffers this type backs when built without optimizations. A raw
        // `write_bytes` lowers to memset in every profile.
        if len > self.buf.len() {
            self.buf.reserve(len - self.buf.len());
            // SAFETY: `reserve` just guaranteed capacity for `len` bytes,
            // so the write stays inside the allocation, and `set_len(len)`
            // only exposes bytes the `write_bytes` initialized.
            unsafe {
                let start = self.buf.as_mut_ptr().add(self.buf.len());
                start.write_bytes(fill, len - self.buf.len());
                self.buf.set_len(len);
            }
        } else {
            self.buf.truncate(len);
        }
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Total capacity of the underlying allocation.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Set the length without touching the contents (mirrors the real
    /// `bytes` crate's API).
    ///
    /// # Safety
    ///
    /// `len` must not exceed [`capacity`](Self::capacity), and every byte
    /// in `..len` must have been written at some point since the
    /// allocation was created (bytes never deinitialize, so a previous
    /// `resize` covering `..len` is sufficient even after `truncate`).
    pub unsafe fn set_len(&mut self, len: usize) {
        debug_assert!(len <= self.buf.capacity());
        // SAFETY: the caller upholds this method's contract, which is
        // exactly `Vec::set_len`'s (in-capacity, initialized prefix).
        unsafe { self.buf.set_len(len) };
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

/// Read cursor over a byte buffer (the subset the wire codec uses).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Copy bytes out into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write cursor over a growable byte buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn cursor_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(42);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 13);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn try_into_mut_requires_unique_ownership() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let alias = b.clone();
        let b = b.try_into_mut().unwrap_err();
        drop(alias);
        let m = b.try_into_mut().unwrap();
        assert_eq!(&m[..], &[1, 2, 3, 4]);
        // A payload *slice* holds a reference too; dropping it unlocks the
        // buffer, and the reclaimed storage is the full backing allocation.
        let mut whole = m.freeze();
        let payload = whole.split_off(2);
        let whole = whole.try_into_mut().unwrap_err();
        drop(payload);
        let m = whole.try_into_mut().unwrap();
        assert_eq!(&m[..], &[1, 2, 3, 4]);
        // Static data is never reclaimable.
        assert!(Bytes::from_static(b"abc").try_into_mut().is_err());
    }

    #[test]
    fn hash_matches_slice_borrow() {
        use std::collections::HashMap;
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from_static(b"k"), 1);
        assert_eq!(m.get(&b"k"[..]), Some(&1));
    }
}
