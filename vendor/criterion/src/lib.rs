//! Offline-vendored subset of [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no registry access, so this workspace vendors
//! a miniature benchmark harness with the same authoring API the figure
//! benchmarks use (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`). Instead of criterion's
//! statistical machinery it runs an adaptive number of iterations (heavy
//! closures run few times, light ones many) and prints mean wall-clock time
//! per iteration — enough to compare switch-stage costs and to regenerate
//! the paper-figure trends, while keeping `cargo bench` runs short.

// Wall-clock reads are deliberate here: benchmark harness: measuring real time is its job.
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` sizes its batches. Only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    /// (total elapsed, iterations) recorded by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

/// Target wall-clock spent measuring one benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Iteration-count ceiling, so trivial closures still finish promptly.
const MAX_ITERS: u64 = 1_000_000;

impl Bencher {
    fn new() -> Self {
        Bencher { result: None }
    }

    /// Measure `routine` run back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One calibration call decides how many timed iterations fit the
        // target; very heavy routines (whole-cluster simulations) run once.
        let calibrate = Instant::now();
        black_box(routine());
        let once = calibrate.elapsed();
        let iters = planned_iterations(once);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed() + once, iters + 1));
    }

    /// Measure `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let calibrate = Instant::now();
        black_box(routine(input));
        let once = calibrate.elapsed();
        let iters = planned_iterations(once);
        let mut total = once;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some((total, iters + 1));
    }
}

fn planned_iterations(once: Duration) -> u64 {
    if once >= TARGET {
        return 0;
    }
    let per_iter = once.as_nanos().max(1) as u64;
    ((TARGET.as_nanos() as u64) / per_iter).clamp(1, MAX_ITERS)
}

fn report(name: &str, result: Option<(Duration, u64)>) {
    match result {
        Some((total, iters)) if iters > 0 => {
            let per = total.as_nanos() as f64 / iters as f64;
            println!("{name:<50} {:>12.1} ns/iter  ({iters} iters)", per);
        }
        _ => println!("{name:<50} (no measurement)"),
    }
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.result);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks; identifiers print as `group/name`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.result);
        self
    }

    /// Hint for expected sample counts; accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Hint for the measurement window; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
