//! Offline-vendored subset of [`crossbeam`](https://docs.rs/crossbeam):
//! multi-producer multi-consumer channels with the `crossbeam-channel`
//! semantics Harmonia's live runtime relies on — cloneable senders *and*
//! receivers, bounded back-pressure, timeouts, and disconnect detection
//! without poisoning.
//!
//! Built on `Mutex<VecDeque>` + two condvars. Not as fast as the real
//! lock-free implementation, but the live driver moves thousands (not
//! millions) of envelopes per second per link, far below this design's
//! capacity.

// Wall-clock reads are deliberate here: channel recv_timeout deadlines are real kernel time.
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Sending half; clone freely.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clone freely.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a blocking receive gave up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Every sender is gone and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is momentarily empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    fn pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        pair(None)
    }

    /// Channel holding at most `cap` queued messages; senders block when full.
    ///
    /// Real crossbeam's `bounded(0)` is a rendezvous channel, which this
    /// vendored subset does not implement; reject it loudly rather than
    /// silently buffering one message and diverging from the real crate.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "vendored crossbeam does not implement rendezvous channels (bounded(0))"
        );
        pair(Some(cap))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Deliver `msg`, blocking while a bounded queue is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.not_full.wait(st).unwrap();
                    }
                    _ => {
                        st.queue.push_back(msg);
                        self.inner.not_empty.notify_one();
                        return Ok(());
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Take one message, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Take one message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Take one message if immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is momentarily empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = thread::spawn(move || tx.send(3));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        #[should_panic(expected = "rendezvous")]
        fn bounded_zero_is_rejected() {
            let _ = bounded::<u32>(0);
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }
    }
}
