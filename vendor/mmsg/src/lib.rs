//! Thin `sendmmsg`/`recvmmsg` wrapper for batched UDP datagram I/O.
//!
//! The build environment has no registry access (so no `libc` crate); this
//! vendored helper declares the two Linux batching syscalls by hand —
//! exactly the slice of the C API Harmonia's UDP data plane needs — and
//! compiles a portable `std`-only fallback everywhere else. One call moves
//! up to [`MAX_BATCH`] datagrams across the kernel boundary, which is the
//! eRPC-style amortization the transport's batch verbs are built on: the
//! syscall cost is paid once per *batch*, not once per packet.
//!
//! Both implementations are compiled on Linux: [`send_batch`]/[`recv_batch`]
//! dispatch to the syscall path, and [`fallback`] exposes the loop-over-
//! `send_to`/`recv_from` path directly so equivalence tests can drive the
//! two against each other on the same host.
//!
//! Contract shared by both paths:
//!
//! * Sends are best-effort per datagram: a destination that fails does not
//!   abort the rest of the batch, it is tallied in
//!   [`SendReport::errors`] — identical bookkeeping to a scalar `send_to`
//!   loop that counts failures.
//! * Receives never block: the syscall path passes `MSG_DONTWAIT`, the
//!   fallback requires (and the transport guarantees) a nonblocking socket.
//!   An empty queue is `Ok(0)`, not an error.

#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Largest number of datagrams moved by one wrapper call. Linux caps
/// `UIO_MAXIOV` far higher; 32 keeps the per-endpoint buffer pool small
/// while already amortizing the syscall ~30x.
pub const MAX_BATCH: usize = 32;

/// Per-batch send accounting: how many datagrams reached the kernel and how
/// many failed (unreachable port, full socket buffer, ...).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SendReport {
    /// Datagrams handed to the kernel.
    pub sent: usize,
    /// Datagrams the kernel refused.
    pub errors: usize,
}

/// Whether [`send_batch`]/[`recv_batch`] use the batched syscalls on this
/// target (Linux) or the portable fallback.
pub const fn accelerated() -> bool {
    cfg!(target_os = "linux")
}

/// Send every `(destination, payload)` datagram, batching kernel crossings
/// where the target supports it. Chunks of more than [`MAX_BATCH`] messages
/// are split internally; order within the call is preserved.
pub fn send_batch(sock: &UdpSocket, msgs: &[(SocketAddr, &[u8])]) -> SendReport {
    #[cfg(target_os = "linux")]
    {
        linux::send_batch(sock, msgs)
    }
    #[cfg(not(target_os = "linux"))]
    {
        fallback::send_batch(sock, msgs)
    }
}

/// [`send_batch`] with per-datagram outcomes: `ok[i]` is set to whether
/// datagram `i` reached the kernel. The coalescing transport needs this to
/// credit frame-granular accounting — a refused datagram refuses every frame
/// packed inside it, so a boolean per datagram, not just totals.
///
/// `ok` must have at least `msgs.len()` slots (asserted); slots beyond the
/// batch are left untouched.
pub fn send_batch_outcomes(
    sock: &UdpSocket,
    msgs: &[(SocketAddr, &[u8])],
    ok: &mut [bool],
) -> SendReport {
    assert!(ok.len() >= msgs.len(), "one outcome slot per datagram");
    #[cfg(target_os = "linux")]
    {
        linux::send_batch_mark(sock, msgs, &mut |i, sent| ok[i] = sent)
    }
    #[cfg(not(target_os = "linux"))]
    {
        fallback::send_batch_mark(sock, msgs, &mut |i, sent| ok[i] = sent)
    }
}

/// Receive up to `bufs.len()` queued datagrams without blocking, writing
/// datagram `i`'s bytes into `bufs[i]` and its length into `lens[i]`.
/// Returns how many datagrams were drained; an empty queue is `Ok(0)`.
///
/// The socket must be in nonblocking mode for the fallback path; the Linux
/// path passes `MSG_DONTWAIT` and never blocks regardless.
pub fn recv_batch(
    sock: &UdpSocket,
    bufs: &mut [&mut [u8]],
    lens: &mut [usize],
) -> io::Result<usize> {
    assert!(bufs.len() <= lens.len(), "one length slot per buffer");
    #[cfg(target_os = "linux")]
    {
        linux::recv_batch(sock, bufs, lens)
    }
    #[cfg(not(target_os = "linux"))]
    {
        fallback::recv_batch(sock, bufs, lens)
    }
}

/// The portable path: plain `send_to`/`recv_from` loops. Public (and
/// compiled on every target) so the batched syscalls can be tested for
/// equivalence against it on the same host.
pub mod fallback {
    use super::*;

    /// Loop `send_to`, tallying failures per datagram.
    pub fn send_batch(sock: &UdpSocket, msgs: &[(SocketAddr, &[u8])]) -> SendReport {
        send_batch_mark(sock, msgs, &mut |_, _| {})
    }

    /// [`send_batch`] reporting each datagram's outcome through `mark`.
    pub fn send_batch_mark(
        sock: &UdpSocket,
        msgs: &[(SocketAddr, &[u8])],
        mark: &mut dyn FnMut(usize, bool),
    ) -> SendReport {
        let mut report = SendReport::default();
        for (i, (dst, payload)) in msgs.iter().enumerate() {
            match sock.send_to(payload, dst) {
                Ok(_) => {
                    report.sent += 1;
                    mark(i, true);
                }
                Err(_) => {
                    report.errors += 1;
                    mark(i, false);
                }
            }
        }
        report
    }

    /// Loop nonblocking `recv_from` until the queue is empty or every
    /// buffer is filled.
    pub fn recv_batch(
        sock: &UdpSocket,
        bufs: &mut [&mut [u8]],
        lens: &mut [usize],
    ) -> io::Result<usize> {
        let mut n = 0;
        while n < bufs.len() {
            match sock.recv(bufs[n]) {
                Ok(len) => {
                    lens[n] = len;
                    n += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
                // Transient kernel errors (e.g. ECONNRESET from ICMP
                // port-unreachable) end the batch; the datagram is gone
                // either way and the caller's next drain continues.
                Err(_) => break,
            }
        }
        Ok(n)
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use std::net::SocketAddr;
    use std::os::raw::{c_int, c_uint, c_void};
    use std::os::unix::io::AsRawFd;
    use std::ptr;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const MSG_DONTWAIT: c_int = 0x40;

    #[repr(C)]
    struct IoVec {
        iov_base: *mut c_void,
        iov_len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        msg_name: *mut c_void,
        msg_namelen: u32,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut c_void,
        msg_controllen: usize,
        msg_flags: c_int,
    }

    #[repr(C)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: c_uint,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn6 {
        sin6_family: u16,
        sin6_port: u16,
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    /// Either address family, large enough for both.
    #[repr(C)]
    #[derive(Clone, Copy)]
    union SockAddrAny {
        v4: SockAddrIn,
        v6: SockAddrIn6,
    }

    extern "C" {
        fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
        fn recvmmsg(
            fd: c_int,
            msgvec: *mut MMsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
    }

    fn fill_sockaddr(dst: &SocketAddr, out: &mut SockAddrAny) -> u32 {
        match dst {
            SocketAddr::V4(a) => {
                out.v4 = SockAddrIn {
                    sin_family: AF_INET,
                    sin_port: a.port().to_be(),
                    sin_addr: u32::from_ne_bytes(a.ip().octets()),
                    sin_zero: [0; 8],
                };
                std::mem::size_of::<SockAddrIn>() as u32
            }
            SocketAddr::V6(a) => {
                out.v6 = SockAddrIn6 {
                    sin6_family: AF_INET6,
                    sin6_port: a.port().to_be(),
                    sin6_flowinfo: a.flowinfo(),
                    sin6_addr: a.ip().octets(),
                    sin6_scope_id: a.scope_id(),
                };
                std::mem::size_of::<SockAddrIn6>() as u32
            }
        }
    }

    pub fn send_batch(sock: &UdpSocket, msgs: &[(SocketAddr, &[u8])]) -> SendReport {
        send_batch_mark(sock, msgs, &mut |_, _| {})
    }

    /// [`send_batch`] reporting each datagram's outcome through
    /// `mark(index, sent)`. The retry loop below already knows per-index
    /// outcomes (a stalled `sendmmsg` names the head datagram that failed),
    /// so exposing them costs one callback per datagram, no extra syscalls.
    pub fn send_batch_mark(
        sock: &UdpSocket,
        msgs: &[(SocketAddr, &[u8])],
        mark: &mut dyn FnMut(usize, bool),
    ) -> SendReport {
        let fd = sock.as_raw_fd();
        let mut report = SendReport::default();
        let mut base = 0usize;
        for chunk in msgs.chunks(MAX_BATCH) {
            let mut addrs: Vec<SockAddrAny> = Vec::with_capacity(chunk.len());
            let mut iovs: Vec<IoVec> = Vec::with_capacity(chunk.len());
            let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(chunk.len());
            for (dst, payload) in chunk {
                let mut addr = SockAddrAny {
                    v4: SockAddrIn {
                        sin_family: 0,
                        sin_port: 0,
                        sin_addr: 0,
                        sin_zero: [0; 8],
                    },
                };
                let namelen = fill_sockaddr(dst, &mut addr);
                addrs.push(addr);
                iovs.push(IoVec {
                    // sendmmsg never writes through the iov; the const cast
                    // is the C API's lack of a const iovec, not mutation.
                    iov_base: payload.as_ptr() as *mut c_void,
                    iov_len: payload.len(),
                });
                hdrs.push(MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: ptr::null_mut(), // patched below
                        msg_namelen: namelen,
                        msg_iov: ptr::null_mut(), // patched below
                        msg_iovlen: 1,
                        msg_control: ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                });
            }
            // Patch the pointers only once the vectors stop reallocating.
            for i in 0..chunk.len() {
                hdrs[i].msg_hdr.msg_name = &mut addrs[i] as *mut SockAddrAny as *mut c_void;
                hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
            }
            // sendmmsg stops at the first failing datagram (its error is
            // only reported when *nothing* was sent), so loop: skip one
            // message past each stall, matching a scalar loop's
            // per-datagram accounting.
            let mut done = 0;
            while done < chunk.len() {
                let remaining = (chunk.len() - done) as c_uint;
                // SAFETY: `fd` is a live socket borrowed for this call;
                // `hdrs` holds `chunk.len()` headers, so `done < chunk.len()`
                // keeps the pointer in bounds with `remaining` valid entries
                // after it. Every header's name/iov pointer was patched above
                // to point into `addrs`/`iovs`, which outlive this call and
                // no longer reallocate.
                let rc = unsafe { sendmmsg(fd, hdrs.as_mut_ptr().add(done), remaining, 0) };
                if rc > 0 {
                    report.sent += rc as usize;
                    for i in done..done + rc as usize {
                        mark(base + i, true);
                    }
                    done += rc as usize;
                } else {
                    // The head datagram failed (or EINTR): charge it as an
                    // error and move on — never stall the rest of the batch.
                    report.errors += 1;
                    mark(base + done, false);
                    done += 1;
                }
            }
            base += chunk.len();
        }
        report
    }

    pub fn recv_batch(
        sock: &UdpSocket,
        bufs: &mut [&mut [u8]],
        lens: &mut [usize],
    ) -> io::Result<usize> {
        if bufs.is_empty() {
            return Ok(0);
        }
        let fd = sock.as_raw_fd();
        let take = bufs.len().min(MAX_BATCH);
        let mut iovs: Vec<IoVec> = bufs[..take]
            .iter_mut()
            .map(|b| IoVec {
                iov_base: b.as_mut_ptr() as *mut c_void,
                iov_len: b.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = (0..take)
            .map(|i| MMsgHdr {
                msg_hdr: MsgHdr {
                    msg_name: ptr::null_mut(),
                    msg_namelen: 0,
                    msg_iov: &mut iovs[i],
                    msg_iovlen: 1,
                    msg_control: ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            })
            .collect();
        // SAFETY: `fd` is a live socket borrowed for this call; `hdrs` has
        // exactly `take` entries, each aiming its single iovec at a distinct
        // caller buffer in `bufs` that outlives the call, so the kernel
        // writes only into memory we exclusively borrow. A null timeout is
        // allowed (no wait with MSG_DONTWAIT).
        let rc = unsafe {
            recvmmsg(
                fd,
                hdrs.as_mut_ptr(),
                take as c_uint,
                MSG_DONTWAIT,
                ptr::null_mut(),
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            return match err.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Ok(0),
                // Transient kernel errors (ICMP port-unreachable on a dead
                // peer) — nothing drained, the caller's next pass continues.
                _ => Ok(0),
            };
        }
        let n = rc as usize;
        for (i, hdr) in hdrs.iter().take(n).enumerate() {
            lens[i] = hdr.msg_len as usize;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let to = b.local_addr().unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b, to)
    }

    fn drain(b: &UdpSocket, max: usize) -> Vec<Vec<u8>> {
        let mut storage: Vec<Vec<u8>> = (0..max).map(|_| vec![0u8; 2048]).collect();
        let mut lens = vec![0usize; max];
        let mut out = Vec::new();
        // A loopback send is not synchronously visible; poll briefly.
        for _ in 0..200 {
            let mut bufs: Vec<&mut [u8]> = storage.iter_mut().map(|v| &mut v[..]).collect();
            let n = recv_batch(b, &mut bufs, &mut lens).unwrap();
            for i in 0..n {
                out.push(storage[i][..lens[i]].to_vec());
            }
            if out.len() >= max {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        out
    }

    #[test]
    fn batch_roundtrip_preserves_payloads_and_order() {
        let (a, b, to) = pair();
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 3 + i as usize]).collect();
        let msgs: Vec<(SocketAddr, &[u8])> = payloads.iter().map(|p| (to, &p[..])).collect();
        let report = send_batch(&a, &msgs);
        assert_eq!(
            report,
            SendReport {
                sent: 20,
                errors: 0
            }
        );
        assert_eq!(drain(&b, 20), payloads);
    }

    #[test]
    fn oversize_batch_is_chunked() {
        let (a, b, to) = pair();
        let payloads: Vec<Vec<u8>> = (0..(MAX_BATCH + 5))
            .map(|i| (i as u32).to_le_bytes().to_vec())
            .collect();
        let msgs: Vec<(SocketAddr, &[u8])> = payloads.iter().map(|p| (to, &p[..])).collect();
        let report = send_batch(&a, &msgs);
        assert_eq!(report.sent, MAX_BATCH + 5);
        assert_eq!(drain(&b, MAX_BATCH + 5), payloads);
    }

    #[test]
    fn failed_destination_is_counted_not_fatal() {
        let (a, b, to) = pair();
        // Port 0 is never a valid destination: the kernel refuses the send.
        let bad: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let msgs: Vec<(SocketAddr, &[u8])> = vec![(to, b"first"), (bad, b"lost"), (to, b"second")];
        let report = send_batch(&a, &msgs);
        assert_eq!(report, SendReport { sent: 2, errors: 1 });
        let got = drain(&b, 2);
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn outcomes_name_the_failed_datagram() {
        let (a, b, to) = pair();
        let bad: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let msgs: Vec<(SocketAddr, &[u8])> = vec![(to, b"one"), (bad, b"lost"), (to, b"two")];
        let mut ok = [false; 3];
        let report = send_batch_outcomes(&a, &msgs, &mut ok);
        assert_eq!(report, SendReport { sent: 2, errors: 1 });
        assert_eq!(ok, [true, false, true]);
        // The fallback path reports the same per-index outcomes.
        let mut ok2 = [false; 3];
        let r2 = fallback::send_batch_mark(&a, &msgs, &mut |i, sent| ok2[i] = sent);
        assert_eq!(r2, report);
        assert_eq!(ok2, ok);
        assert_eq!(drain(&b, 4).len(), 4);
    }

    #[test]
    fn outcomes_cross_chunk_boundaries() {
        let (a, b, to) = pair();
        // More than one chunk, with a failure in the second chunk: the mark
        // indices must be batch-global, not chunk-local.
        let bad: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let payload = [7u8; 4];
        let mut msgs: Vec<(SocketAddr, &[u8])> =
            (0..MAX_BATCH + 3).map(|_| (to, &payload[..])).collect();
        msgs[MAX_BATCH + 1] = (bad, &payload[..]);
        let mut ok = vec![false; msgs.len()];
        let report = send_batch_outcomes(&a, &msgs, &mut ok);
        assert_eq!(report.sent, MAX_BATCH + 2);
        assert_eq!(report.errors, 1);
        let failed: Vec<usize> = (0..msgs.len()).filter(|&i| !ok[i]).collect();
        assert_eq!(failed, vec![MAX_BATCH + 1]);
        assert_eq!(drain(&b, MAX_BATCH + 2).len(), MAX_BATCH + 2);
    }

    #[test]
    fn empty_queue_is_ok_zero() {
        let (_a, b, _to) = pair();
        let mut storage = [0u8; 64];
        let mut bufs: Vec<&mut [u8]> = vec![&mut storage[..]];
        let mut lens = [0usize; 1];
        assert_eq!(recv_batch(&b, &mut bufs, &mut lens).unwrap(), 0);
    }

    #[test]
    fn fallback_matches_batched_path() {
        let (a, b, to) = pair();
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![0xA0 + i; 8]).collect();
        let msgs: Vec<(SocketAddr, &[u8])> = payloads.iter().map(|p| (to, &p[..])).collect();
        let r1 = send_batch(&a, &msgs);
        let got1 = drain(&b, 10);
        let r2 = fallback::send_batch(&a, &msgs);
        // Drain through the fallback receiver this time.
        let mut storage: Vec<Vec<u8>> = (0..10).map(|_| vec![0u8; 64]).collect();
        let mut lens = vec![0usize; 10];
        let mut got2 = Vec::new();
        for _ in 0..200 {
            let mut bufs: Vec<&mut [u8]> = storage.iter_mut().map(|v| &mut v[..]).collect();
            let n = fallback::recv_batch(&b, &mut bufs, &mut lens).unwrap();
            for i in 0..n {
                got2.push(storage[i][..lens[i]].to_vec());
            }
            if got2.len() >= 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(r1, r2);
        assert_eq!(got1, payloads);
        assert_eq!(got2, payloads);
    }
}
