//! Offline-vendored subset of the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: non-poisoning [`Mutex`] and [`RwLock`] built on `std::sync`.
//!
//! The real crate's selling points are speed and the poison-free API; only
//! the API matters to Harmonia, so these wrappers recover from std's poison
//! errors (a panic while holding a lock does not wedge other threads).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: unpoison(self.inner.lock()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: unpoison(self.inner.read()),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: unpoison(self.inner.write()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}
impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}
impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(Vec::<u8>::new());
        m.lock().push(9);
        assert_eq!(m.lock().len(), 1);
    }
}
