//! Offline-vendored subset of [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no registry access, so this workspace vendors
//! a miniature property-testing framework exposing the slice of the
//! `proptest` API Harmonia's tests use:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { body }`),
//! * [`Strategy`] with `prop_map`, range strategies, tuple strategies,
//! * `prop::collection::vec`, `prop::option::of`, `prop::bool::ANY`,
//! * [`any::<T>()`] for the primitive types, and
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its inputs via the assertion message but is not minimized), and the
//! per-test RNG is seeded deterministically from the test's name so CI
//! failures reproduce locally. The case count honours `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, so every test gets a distinct stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, pred }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                // Full-width ranges (0..=u64::MAX) wrap the span to zero in
                // 64 bits; every value is fair there, so draw directly.
                let span = (e as i128).wrapping_sub(s as i128).wrapping_add(1) as u128;
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (s as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_tuple!(A: 0);
strategy_tuple!(A: 0, B: 1);
strategy_tuple!(A: 0, B: 1, C: 2);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// A fixed value as a (degenerate) strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{fffd}')
        } else {
            (0x20 + rng.below(0x5f)) as u8 as char
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop::*` paths.
pub mod prop {
    /// `Vec` strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors whose length falls in `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<T>` values.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` about a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The strategy type behind [`ANY`].
        pub struct BoolAny;

        /// Either boolean, uniformly.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each generated case runs the body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            // The captured attributes include the caller's own `#[test]`.
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(128);
                let mut __proptest_rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __proptest_case in 0..cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_panic() {
        let mut rng = TestRng::deterministic("full-width");
        for _ in 0..100 {
            let _ = Strategy::generate(&(0u64..=u64::MAX), &mut rng);
            let _ = Strategy::generate(&(i64::MIN..=i64::MAX), &mut rng);
            let _ = Strategy::generate(&(0usize..=usize::MAX), &mut rng);
            let v = Strategy::generate(&(0u8..=u8::MAX), &mut rng);
            let _ = v; // all u8 values are in range by construction
        }
    }

    proptest! {
        /// The macro itself works end to end, with multiple bindings.
        #[test]
        fn macro_smoke(x in 0u32..10, mut v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 10);
            v.push(0);
            prop_assert!(v.len() <= 8);
            prop_assert_eq!(v[v.len() - 1], 0);
        }

        /// Tuple + map + option + filter compose.
        #[test]
        fn combinators(pair in (0u8..4, prop::option::of(1u64..5)).prop_map(|(a, b)| (a, b))) {
            let (a, b) = pair;
            prop_assert!(a < 4);
            if let Some(b) = b {
                prop_assert!((1..5).contains(&b));
            }
        }
    }
}
