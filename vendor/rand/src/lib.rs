//! Offline-vendored subset of the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the `rand 0.8` API Harmonia uses: the [`Rng`] extension
//! trait (`gen`, `gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::SmallRng`] — here a xoshiro256++ generator seeded through
//! SplitMix64, the same construction the real `SmallRng` uses on 64-bit
//! targets. Determinism for a fixed seed is the property the simulator
//! relies on, and this implementation is fully deterministic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as the real crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = (u128::sample_standard(rng)) % span;
                ((self.start as u128).wrapping_add(off)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return u128::sample_standard(rng) as $t;
                }
                let off = (u128::sample_standard(rng)) % span;
                ((start as u128).wrapping_add(off)) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

macro_rules! range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::sample_standard(rng)) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = (u128::sample_standard(rng)) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `numerator`-in-`denominator` trial.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(numerator <= denominator && denominator > 0);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic for a fixed seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(0.5..1.5f64);
            assert!((0.5..1.5).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
